//! The shared **SCOT traversal core**: one implementation of the
//! protect → validate → recover loop of the paper's Figure 5 (right), used by
//! every Harris-style traversal in this crate.
//!
//! Before this module existed, the Harris list, the Harris-Michael list, the
//! hash-map buckets, the wait-free list's fast path and every skip-list level
//! each hand-rolled their own copy of the loop.  The algorithmic content —
//! which slot protects what, when the dangerous-zone validation fires, and
//! what happens when it fails — is identical in all of them, so it now lives
//! here exactly once, as the `Cursor`.  The per-structure code keeps only
//! what genuinely differs: where a traversal starts, what happens at its end
//! (insert/delete CASes), and the restart *policy* (the skip list re-enters a
//! level through its entry anchor instead of restarting from the head).
//!
//! # Mapping onto the paper
//!
//! | Figure 5 (right)                         | here |
//! |------------------------------------------|------|
//! | L33-36 start from `&Head`                | `Cursor::begin` |
//! | L38-47 safe-zone walk                    | the first inner loop of `Cursor::seek` |
//! | L48-49 anchor the first unsafe node      | the zone entry in `Cursor::seek` (slot `HP_ANCHOR`) |
//! | L50-56 validated dangerous-zone walk     | the second inner loop of `Cursor::seek` |
//! | §3.2.1 recovery                          | `Recovery::Recovered` |
//! | restart (L50's `goto` on failure)        | `Recovery::Restart` / [`Restart`] |
//! | L57-62 cleanup + `Do_Retire`             | `Cursor::unlink_pending` |
//!
//! The validation itself — *"does the last safe node still point at the first
//! unsafe node?"* — is the one-line primitive `validate_link` plus a
//! recycling-incarnation re-check on the anchored chain head (the version
//! stamp the block pool maintains for VBR); the Natarajan-Mittal tree, whose
//! recovery policy is a plain restart (§3.2.2), calls it directly on its
//! edges instead of driving a full cursor.
//!
//! # The checkpoint protocol (rung 4)
//!
//! The neutralization/version schemes (NBR, VBR) may ask a reader to restart
//! its whole operation so reclamation can advance past it.  The cursor is the
//! single place that request is honored: `seek` polls
//! `SmrGuard::needs_restart` alongside the caller's interrupt hook,
//! acknowledges with `SmrGuard::checkpoint` (which voids every protection the
//! guard holds) and surfaces [`Restart::Operation`] — per-structure code only
//! has to treat that rung as "restart the operation from the root", which the
//! existing restart arms already do.  Traversals that keep protected pointers
//! of their own across seeks (tower builds, post-injection cleanups) disable
//! the poll through `Cursor::begin`'s `checkpoints` flag.
//!
//! # Statistics
//!
//! Every cursor records into a [`TraversalStats`] block owned by its
//! structure: full restarts (Table 2 of the paper), §3.2.1 recoveries, and
//! dangerous-zone entries.  [`TraversalSnapshot`] is the read-side view the
//! harness renders as uniform columns in every experiment table.

use crate::slots::{HP_ANCHOR, HP_CURR, HP_NEXT, HP_PREV};
use core::sync::atomic::{AtomicU64, Ordering};
use scot_smr::{Atomic, Link, Shared, SmrGuard};

/// Tag bit marking a node as logically deleted (stored in the node's own
/// successor pointer, exactly as in Harris' original algorithm).
pub(crate) const MARK: usize = 1;

/// Traversal statistics shared by every structure: restart counting for the
/// paper's Table 2 plus §3.2.1 recovery and dangerous-zone-entry events.
///
/// Counters are relaxed atomics — they are observability, not
/// synchronization — and are only ever read through `TraversalStats::snapshot`.
///
/// ```
/// use scot::{ConcurrentMap, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let list: HarrisList<u64, Hp, u64> = HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut h = ConcurrentMap::handle(&list);
/// let mut g = list.pin(&mut h);
/// for k in 0..32 {
///     list.insert(&mut g, k, k).unwrap();
/// }
/// drop(g);
/// let stats = list.traversal_stats();
/// // Single-threaded, nothing can disrupt a traversal:
/// assert_eq!(stats.restarts, 0);
/// assert_eq!(stats.recoveries, 0);
/// assert_eq!(stats.zone_entries, 0);
/// ```
#[derive(Default)]
pub struct TraversalStats {
    restarts: AtomicU64,
    recoveries: AtomicU64,
    zone_entries: AtomicU64,
    spins: AtomicU64,
}

impl TraversalStats {
    /// Records one full traversal restart (ladder rung 3 / restart-from-head).
    #[inline]
    pub(crate) fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one recovery: a §3.2.1 escape or a skip-list rung-2 re-entry
    /// that avoided a full restart.
    #[inline]
    pub(crate) fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dangerous-zone entry (the traversal stepped onto a
    /// logically deleted node and began validating).
    #[inline]
    pub(crate) fn record_zone_entry(&self) {
        self.zone_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` backoff spin iterations waited before a retry.
    #[inline]
    pub(crate) fn record_spins(&self, n: u64) {
        self.spins.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of full restarts recorded so far.
    #[inline]
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Number of recoveries recorded so far.
    #[inline]
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Number of dangerous-zone entries recorded so far.
    #[inline]
    pub fn zone_entries(&self) -> u64 {
        self.zone_entries.load(Ordering::Relaxed)
    }

    /// Total backoff spin iterations waited so far.
    #[inline]
    pub fn spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// Reads all counters at once (not atomically across counters; the
    /// numbers are statistics, not invariants).
    pub fn snapshot(&self) -> TraversalSnapshot {
        TraversalSnapshot {
            restarts: self.restarts(),
            recoveries: self.recoveries(),
            zone_entries: self.zone_entries(),
            spins: self.spins(),
        }
    }
}

/// A point-in-time view of a [`TraversalStats`] block; what
/// [`crate::ConcurrentMap::traversal_stats`] returns and what the benchmark
/// harness renders as the restart/recovery columns of its tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalSnapshot {
    /// Full traversal restarts (Table 2 of the paper).
    pub restarts: u64,
    /// §3.2.1 recoveries plus skip-list ladder rung-2 re-entries.
    pub recoveries: u64,
    /// Dangerous-zone entries (marked-chain traversals begun).
    pub zone_entries: u64,
    /// Backoff spin iterations waited before retries (0 when backoff is
    /// disabled through [`crate::tuning::set_backoff`]).
    pub spins: u64,
}

impl TraversalSnapshot {
    /// Component-wise sum, used to aggregate per-bucket and per-layer stats.
    pub fn merged(self, other: TraversalSnapshot) -> TraversalSnapshot {
        TraversalSnapshot {
            restarts: self.restarts + other.restarts,
            recoveries: self.recoveries + other.recoveries,
            zone_entries: self.zone_entries + other.zone_entries,
            spins: self.spins + other.spins,
        }
    }
}

/// The bare SCOT validation primitive (§3.1): does the recorded last-safe
/// link still hold `expected`?  The cursor wraps this in the recovery ladder;
/// the Natarajan-Mittal tree — whose policy on failure is a plain restart
/// (§3.2.2) — calls it directly on its `parent → leaf` and
/// `ancestor → successor` edges.
///
/// # Safety
/// The owner of `link` must be live: the list/level head, a tree sentinel, or
/// a node currently protected by a hazard slot / era reservation.
#[inline]
pub(crate) unsafe fn validate_link<T>(link: Link<T>, expected: Shared<T>) -> bool {
    // SAFETY: forwarded — the caller guarantees the link's owner is live,
    // which is exactly the `Link::load` contract.
    // ORDERING: Acquire — a successful validation is what licenses the
    // subsequent deref of `expected`'s pointee, so the load must synchronize
    // with the release store that published the link.
    unsafe { link.load(Ordering::Acquire) == expected }
}

/// One-hop software prefetch: while the cursor still examines the current
/// node, warm the cache line of the already-protected successor snapshot so
/// the upcoming `advance` dereferences into L1 instead of missing to memory.
/// Pointer-chasing traversals expose no instruction-level parallelism on
/// their own — every key comparison waits for the previous load — so this is
/// where list walks spend their cycles; overlapping the next miss with the
/// current comparison is the classic fix.
///
/// A pure hint: issued only on targets with a portable prefetch instruction
/// and compiled out under Miri (which does not model prefetch intrinsics).
/// The tag bit is stripped first so the hint lands on the node's actual
/// address.
#[inline(always)]
fn prefetch_next<N>(next: Shared<N>) {
    if !crate::tuning::prefetch_enabled() {
        return;
    }
    let ptr = next.untagged().as_ptr();
    if ptr.is_null() {
        return;
    }
    #[cfg(all(not(miri), target_arch = "x86_64"))]
    // SAFETY: `prefetcht0` is an architectural hint — it never faults and
    // performs no access visible to the abstract machine, so any address
    // (even one concurrently retired) is sound to pass.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast());
    }
    #[cfg(all(not(miri), target_arch = "aarch64"))]
    // SAFETY: `prfm pldl1keep` is an architectural hint — it never faults and
    // performs no access visible to the abstract machine; the asm reads no
    // memory, touches no stack, and preserves flags.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(any(miri, not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
    let _ = ptr;
}

/// Cap of the restart-ladder backoff: at most `1 << BACKOFF_MAX_SHIFT` spin
/// hints (a few hundred cycles), far below a scheduling quantum — backoff can
/// delay a retry but never park a lock-free operation.
const BACKOFF_MAX_SHIFT: u32 = 6;

std::thread_local! {
    /// Per-thread bounded-exponential backoff state: the next wait is
    /// `1 << shift` spin hints, doubling per consecutive failure up to
    /// [`BACKOFF_MAX_SHIFT`] and reset by the next successful positioning.
    /// Thread-local (not per-cursor) so the state survives the cursor
    /// re-creation that every restart performs, with no cross-thread traffic.
    static BACKOFF_SHIFT: core::cell::Cell<u32> = const { core::cell::Cell::new(0) };
}

/// Waits out one backoff step before a retry (after a failed CAS or a
/// restart-ladder climb), recording the spin count into `stats`.  Under
/// contention storms every thread otherwise re-enters the same contended
/// neighborhood in lockstep and fails again; staggered waits let one winner
/// finish per round.  No-op when disabled through
/// [`crate::tuning::set_backoff`].
#[inline]
fn backoff(stats: &TraversalStats) {
    if !crate::tuning::backoff_enabled() {
        return;
    }
    let spins = BACKOFF_SHIFT.with(|s| {
        let shift = s.get();
        s.set((shift + 1).min(BACKOFF_MAX_SHIFT));
        1u32 << shift
    });
    for _ in 0..spins {
        core::hint::spin_loop();
    }
    stats.record_spins(u64::from(spins));
}

/// Resets this thread's backoff state after a successful positioning.
#[inline]
fn backoff_reset() {
    BACKOFF_SHIFT.with(|s| s.set(0));
}

/// A node traversable by the shared cursor: a key, a value, and, per level, a
/// tagged link to the successor.  Lists are the one-level case; the skip list
/// implements it over its tower layout.
pub(crate) trait SlotNode<K>: Send + Sized + 'static {
    /// The value payload stored next to the key.
    type Value;

    /// The link cell toward this node's successor at `level`.
    ///
    /// # Safety
    /// `level` must be below the node's height.  Every node the cursor reaches
    /// was reached through a level-`level` link, which implies exactly that.
    unsafe fn successor(&self, level: usize) -> &Atomic<Self>;

    /// The node's key.
    fn node_key(&self) -> &K;

    /// The node's value.
    fn node_value(&self) -> &Self::Value;
}

/// Where a positioning traversal stops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeekBound<K> {
    /// Stop at the first node with key `>=` the bound — the paper's ordinary
    /// `Do_Find(k)`.
    Ge(K),
    /// Stop at the first node with key `>` the bound — how a range scan
    /// resumes after the node it was parked on got disrupted.
    Gt(K),
}

impl<K: Ord> SeekBound<K> {
    #[inline]
    fn stops_at(&self, key: &K) -> bool {
        match self {
            SeekBound::Ge(b) => key >= b,
            SeekBound::Gt(b) => key > b,
        }
    }
}

/// How the cursor treats logically deleted nodes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ZoneMode {
    /// SCOT (Figure 5 right): traverse marked chains under dangerous-zone
    /// validation; the caller unlinks the pending chain afterwards.
    /// `recovery` enables the §3.2.1 escape (the ablation bench disables it).
    Scot {
        /// Whether the §3.2.1 recovery optimization is enabled.
        recovery: bool,
    },
    /// Michael's discipline: never step past a marked node — unlink it on the
    /// spot and restart if the unlink CAS fails.  No dangerous zone ever
    /// forms, which is why the Harris-Michael baseline needs no validation.
    Eager,
}

/// Outcome of the recovery ladder after a failed validation, from cheapest to
/// most expensive rung.  Rung 1 (§3.2.1 recovery) is handled *inside* the
/// cursor — the traversal continues from the last safe node's new successor —
/// so only the restart rungs surface to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Restart {
    /// Rung 2: re-enter the current level through its entry anchor (skip-list
    /// only; the anchor stays protected in [`crate::slots::HP_ENTRY`]).
    /// Counted as a recovery, not a restart.
    Entry,
    /// Rung 3: restart from the (level) head.  Counted as a restart — this is
    /// the Table 2 number.
    Head,
    /// Rung 4: the reclamation scheme asked the whole operation to restart
    /// (`SmrGuard::needs_restart`, the NBR/VBR checkpoint protocol).  By the
    /// time the cursor surfaces this, it has already acknowledged with
    /// `SmrGuard::checkpoint`, which voids **every** protection the guard
    /// held — so the caller must restart its operation from the structure
    /// root without touching any previously read pointer.  Counted as a
    /// restart.
    Operation,
}

/// Internal outcome of one validation failure: either the §3.2.1 recovery
/// repositioned the cursor (rung 1), or the ladder says restart.
enum Recovery {
    /// Rung 1 succeeded: `curr`/`next` now sit on the last safe node's new
    /// successor; the traversal continues without losing its position.
    Recovered,
    /// Rungs 2/3: the caller must re-enter per the [`Restart`] level.
    Restart(Restart),
}

/// Result of one `Cursor::seek`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Seek {
    /// The cursor is parked: `curr` is the first live node satisfying the
    /// bound (or null at the end of the level), `prev` is the CAS-able link
    /// of the last safe node, and any marked chain crossed on the way is
    /// retained for `Cursor::unlink_pending`.
    Positioned,
    /// Validation (or an eager unlink) failed; re-enter per the ladder.
    Restart(Restart),
    /// The caller's interrupt callback fired (wait-free helping protocol).
    Interrupted,
}

/// The shared traversal cursor: `prev`/`curr`/`next` over the
/// [slot map](crate::slots), with `advance` (the safe-zone step),
/// `enter_zone`/`validate` (the dangerous-zone discipline) and the §3.2.1
/// recovery ladder driven by `Cursor::seek`.
///
/// One cursor traverses one level of one structure; multi-level structures
/// (the skip list) run one cursor per level, feeding each level's final
/// predecessor into the next level's `Cursor::begin`.
pub(crate) struct Cursor<'t, K, N> {
    /// Link of the last safe node (the level head at start) — the CAS target
    /// for insert/unlink, and the source of every validation load.
    prev: Link<N>,
    /// Owner of `prev`: null for the head, otherwise the node protected by
    /// `HP_PREV`.  Only consulted by the restart ladder.
    pred: Shared<N>,
    /// First unsafe node of the current dangerous zone (anchored in
    /// `HP_ANCHOR`); null while in the safe zone.  `prev_next` in Figure 5.
    chain: Shared<N>,
    /// Current node, protected by `HP_CURR`.
    curr: Shared<N>,
    /// `curr`'s successor snapshot, protected by `HP_NEXT`; its tag bit is
    /// `curr`'s logical-deletion mark.
    next: Shared<N>,
    /// Which level's links this cursor walks (0 for plain lists).
    level: usize,
    /// Restart anchor for ladder rung 2 (null = no rung 2, restart from head).
    entry: Shared<N>,
    /// Whether this traversal may answer a scheme's checkpoint request
    /// (`SmrGuard::needs_restart`) with rung 4.  A checkpoint voids every
    /// protection of the guard, so the constructing operation may only enable
    /// this when it keeps **no** protected pointer of its own across the seek
    /// (the skip-list tower builder and the tree's post-injection cleanup
    /// hold their victim across re-seeks and must leave it off).
    checkpoints: bool,
    /// Recycling-incarnation stamp of the anchored chain head, captured at
    /// zone entry and re-checked by every validation.
    chain_version: u64,
    stats: &'t TraversalStats,
    mode: ZoneMode,
    _key: core::marker::PhantomData<K>,
}

impl<'t, K: Ord + Copy, N: SlotNode<K>> Cursor<'t, K, N> {
    /// Starts a traversal at `start` (the level head, or an interior node's
    /// level link when descending a skip list).  Protects the first node into
    /// `HP_CURR` and its successor into `HP_NEXT`.
    ///
    /// `pred` is the owner of `start` (null for a head link) and `entry` the
    /// rung-2 restart anchor (must stay protected in
    /// [`crate::slots::HP_ENTRY`] by the caller for the whole level).
    ///
    /// Fails with a ladder outcome when `start` itself is already marked —
    /// possible only for interior starts, where the owner can be logically
    /// deleted between levels.
    ///
    /// `checkpoints` enables the rung-4 answer to a scheme's restart request
    /// (see the field docs): pass `true` only when the calling operation
    /// holds no protected pointers of its own across this seek.
    ///
    /// # Safety contract (debug-checked by construction sites)
    /// The owner of `start` must be the head or a node protected by
    /// `HP_PREV`/[`crate::slots::HP_ENTRY`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin<G: SmrGuard>(
        g: &mut G,
        pred: Shared<N>,
        start: Link<N>,
        level: usize,
        entry: Shared<N>,
        checkpoints: bool,
        stats: &'t TraversalStats,
        mode: ZoneMode,
    ) -> Result<Self, Restart> {
        let mut cursor = Cursor {
            prev: start,
            pred,
            chain: Shared::null(),
            curr: Shared::null(),
            next: Shared::null(),
            level,
            entry,
            checkpoints,
            chain_version: 0,
            stats,
            mode,
            _key: core::marker::PhantomData,
        };
        // SAFETY: the caller guarantees the owner of `start` is live (head or
        // protected); the protect re-reads the link until stable.
        cursor.curr = unsafe { g.protect_link(HP_CURR, start) };
        if cursor.curr.tag() != 0 {
            // The start owner is marked at this level: climb the ladder.
            return Err(cursor.climb(g));
        }
        if !cursor.curr.is_null() {
            // SAFETY: `curr` was protected against a link of an unmarked
            // owner (tag checked above), hence the protection is durable.
            cursor.next = g.protect(HP_NEXT, unsafe { cursor.curr.deref().successor(level) });
            prefetch_next(cursor.next);
        }
        Ok(cursor)
    }

    /// The current node (null at the end of the level).  After a
    /// `Seek::Positioned` it is live and unmarked.
    #[inline]
    pub(crate) fn curr(&self) -> Shared<N> {
        self.curr
    }

    /// The protected successor snapshot of `Cursor::curr`.
    #[inline]
    pub(crate) fn next(&self) -> Shared<N> {
        self.next
    }

    /// The last safe node's link — the CAS target for insert/unlink.
    #[inline]
    pub(crate) fn prev_link(&self) -> Link<N> {
        self.prev
    }

    /// The owner of `Cursor::prev_link` (null for the head); multi-level
    /// structures feed it into the next level's `Cursor::begin`.
    #[inline]
    pub(crate) fn pred(&self) -> Shared<N> {
        self.pred
    }

    /// The rung-4 poll: answers a pending scheme restart request
    /// (`SmrGuard::needs_restart`) when this traversal is allowed to.  The
    /// acknowledging `checkpoint` call discards all protections and
    /// re-announces the current era, so on `true` the seek must return
    /// [`Restart::Operation`] immediately — every cursor slot is void.
    #[inline]
    fn poll_checkpoint<G: SmrGuard>(&mut self, g: &mut G) -> bool {
        if self.checkpoints && g.needs_restart() {
            g.checkpoint();
            self.stats.record_restart();
            // A checkpoint storm (the scheme repeatedly neutralizing this
            // thread) is a restart storm like any other: stagger the retry.
            backoff(self.stats);
            true
        } else {
            false
        }
    }

    /// The recovery ladder, rungs 2 and 3: re-enter through the level-entry
    /// anchor when it exists and the traversal has moved past it (the anchor
    /// stays protected by [`crate::slots::HP_ENTRY`], so publishing it back
    /// into `HP_PREV` is sound despite copying downwards); otherwise
    /// restart from the level head.
    fn climb<G: SmrGuard>(&mut self, g: &mut G) -> Restart {
        let rung = if self.pred != self.entry && !self.entry.is_null() {
            self.stats.record_recovery();
            g.announce(HP_PREV, self.entry);
            Restart::Entry
        } else {
            self.stats.record_restart();
            Restart::Head
        };
        // Wait out one backoff step before the caller re-enters: consecutive
        // climbs mean this neighborhood is churning, and retrying instantly
        // just collides again.
        backoff(self.stats);
        rung
    }

    /// One failed validation: attempt the §3.2.1 recovery (rung 1), climbing
    /// the ladder when it is disabled or the last safe node is itself marked.
    ///
    /// `observed` is the value the validation load saw in `prev`.
    fn recover<G: SmrGuard>(&mut self, g: &mut G, observed: Shared<N>) -> Recovery {
        let recovery_enabled = matches!(self.mode, ZoneMode::Scot { recovery: true });
        if observed.tag() == 0 && recovery_enabled {
            // §3.2.1: the last safe node is still unmarked, so it merely
            // points at a new successor (a fresh insert, or the chain has
            // already been cleaned up); continue from there.
            self.stats.record_recovery();
            // SAFETY: `prev` belongs to the head or the node protected by
            // HP_PREV; the protect re-reads the link, whose owner is
            // unmarked, so the returned pointer was not retired when the
            // protection became visible.
            self.curr = unsafe { g.protect_link(HP_CURR, self.prev) };
            if self.curr.tag() != 0 {
                // The last safe node got marked after all.
                return Recovery::Restart(self.climb(g));
            }
            self.chain = Shared::null();
            if self.curr.is_null() {
                self.next = Shared::null();
            } else {
                // SAFETY: protected and validated unmarked just above.
                self.next = g.protect(HP_NEXT, unsafe { self.curr.deref().successor(self.level) });
                prefetch_next(self.next);
            }
            Recovery::Recovered
        } else {
            Recovery::Restart(self.climb(g))
        }
    }

    /// The protect-validate-recover loop (Figure 5 right, L38-56): walks the
    /// level until a live node satisfies `bound` (or the level ends), applying
    /// the dangerous-zone discipline of the cursor's `ZoneMode`.
    ///
    /// `interrupt` is polled once per step; returning `true` aborts with
    /// `Seek::Interrupted` (the wait-free list's helping protocol uses this
    /// to stop every participant as soon as anyone published the answer).
    ///
    /// On `Seek::Positioned`, slots `HP_PREV`/`HP_CURR`/`HP_NEXT`
    /// protect `prev`/`curr`/`next`, so the caller can immediately use them
    /// for its insert/delete CAS.
    pub(crate) fn seek<G: SmrGuard>(
        &mut self,
        g: &mut G,
        bound: &SeekBound<K>,
        interrupt: impl FnMut() -> bool,
    ) -> Seek {
        let outcome = self.seek_inner(g, bound, interrupt);
        if outcome == Seek::Positioned {
            // Progress: the next failure starts the backoff ladder from the
            // bottom again.
            backoff_reset();
        }
        outcome
    }

    fn seek_inner<G: SmrGuard>(
        &mut self,
        g: &mut G,
        bound: &SeekBound<K>,
        mut interrupt: impl FnMut() -> bool,
    ) -> Seek {
        'traverse: loop {
            // ---------- Phase 1: safe zone (L38-47) ----------
            loop {
                if interrupt() {
                    return Seek::Interrupted;
                }
                if self.poll_checkpoint(g) {
                    return Seek::Restart(Restart::Operation);
                }
                if self.curr.is_null() {
                    return Seek::Positioned;
                }
                if let ZoneMode::Eager = self.mode {
                    // Michael's revalidation: the predecessor must still point
                    // at `curr`.  This both detects concurrent unlinks and
                    // maintains the "prev is unmarked" invariant his
                    // protection argument rests on.
                    //
                    // SAFETY: `prev` is the head or a field of the node
                    // protected by HP_PREV.
                    if unsafe { !validate_link(self.prev, self.curr) } {
                        self.stats.record_restart();
                        backoff(self.stats);
                        return Seek::Restart(Restart::Head);
                    }
                }
                if self.next.tag() != 0 {
                    // `curr` is logically deleted: Phase 2 (or eager unlink).
                    break;
                }
                // SAFETY: `curr` is protected and was validated reachable
                // from an unmarked predecessor when that protection was
                // published (standard Harris-Michael argument), or by the
                // SCOT validation when arriving from a dangerous zone.
                let curr_ref = unsafe { self.curr.deref() };
                if bound.stops_at(curr_ref.node_key()) {
                    return Seek::Positioned;
                }
                self.advance(g, curr_ref);
                if self.curr.is_null() {
                    return Seek::Positioned;
                }
                g.dup(HP_NEXT, HP_CURR);
                // SAFETY: `curr` was published (HP_NEXT) by the protect that
                // read it from an unmarked predecessor, hence durable.
                self.next = g.protect(HP_NEXT, unsafe { self.curr.deref().successor(self.level) });
                prefetch_next(self.next);
            }

            if let ZoneMode::Eager = self.mode {
                // Unlink the single marked node right now (the defining
                // difference from Harris' list) and retire it on success.
                //
                // SAFETY: `prev` is the head or a field of the HP_PREV node.
                if unsafe { self.prev.cas(self.curr, self.next.untagged()) }.is_err() {
                    self.stats.record_restart();
                    backoff(self.stats);
                    return Seek::Restart(Restart::Head);
                }
                // SAFETY: we won the unlink CAS — unique retirer.
                unsafe { g.retire(self.curr) };
                self.curr = self.next.untagged();
                g.dup(HP_NEXT, HP_CURR);
                if !self.curr.is_null() {
                    // SAFETY: `curr` was published (HP_NEXT) by the protect
                    // that read it from the validated, unmarked predecessor.
                    self.next =
                        // SAFETY: see the comment above this statement.
                        g.protect(HP_NEXT, unsafe { self.curr.deref().successor(self.level) });
                    prefetch_next(self.next);
                }
                continue 'traverse;
            }

            // ---------- Phase 2: dangerous zone (L48-56) ----------
            self.enter_zone(g);
            loop {
                if interrupt() {
                    return Seek::Interrupted;
                }
                if self.poll_checkpoint(g) {
                    return Seek::Restart(Restart::Operation);
                }
                match self.validate(g) {
                    Ok(()) => {}
                    Err(Recovery::Recovered) => continue 'traverse,
                    Err(Recovery::Restart(r)) => return Seek::Restart(r),
                }
                if self.next.tag() == 0 {
                    // End of the marked chain: back to the safe zone with the
                    // pending cleanup information intact.
                    continue 'traverse;
                }
                // Step deeper into the zone.
                self.curr = self.next.untagged();
                if self.curr.is_null() {
                    return Seek::Positioned;
                }
                g.dup(HP_NEXT, HP_CURR);
                // SAFETY: `curr` was published in HP_NEXT by the protect that
                // read it, and the validation above confirmed the zone was
                // still linked after that publication, so the protection is
                // durable (Theorem 2, applied per level).
                self.next = g.protect(HP_NEXT, unsafe { self.curr.deref().successor(self.level) });
                prefetch_next(self.next);
            }
        }
    }

    /// The safe-zone advance (L43-47): `curr` becomes the last safe node.
    #[inline]
    fn advance<G: SmrGuard>(&mut self, g: &mut G, curr_ref: &N) {
        // SAFETY: (of the successor call) `curr` is linked at `level`, so its
        // height exceeds `level`.
        self.prev = unsafe { curr_ref.successor(self.level) }.as_link();
        self.pred = self.curr;
        self.chain = Shared::null();
        g.dup(HP_CURR, HP_PREV);
        self.curr = self.next;
    }

    /// Enters the dangerous zone: anchors the first unsafe node in
    /// `HP_ANCHOR` so the validation can rely on pointer comparison even if
    /// the chain is concurrently unlinked (ABA prevention, §3.2).
    #[inline]
    fn enter_zone<G: SmrGuard>(&mut self, g: &mut G) {
        g.dup(HP_CURR, HP_ANCHOR);
        self.chain = self.curr;
        // SAFETY: `chain` (= `curr`) is non-null — Phase 1 only breaks into
        // the zone on a non-null, protected `curr` — so its header is
        // readable for the incarnation stamp.
        self.chain_version = unsafe { scot_smr::version_of(self.chain.untagged().as_ptr()) };
        self.stats.record_zone_entry();
    }

    /// The SCOT validation (§3.1), performed **before** every dereference
    /// deeper into the zone: the last safe node must still point at the first
    /// unsafe node.  On failure, runs the recovery ladder.
    ///
    /// One deliberate deviation from Figure 5 (right): as printed, the
    /// unrolled pseudocode issues its first validation only after one
    /// dereference into the zone, which would leave a window on the very
    /// first step; hoisting it to the zone entry matches the simple variant
    /// on the figure's left and the prose of §3.1.
    #[inline]
    fn validate<G: SmrGuard>(&mut self, g: &mut G) -> Result<(), Recovery> {
        // SAFETY: `prev` is either the level head or a field of the node
        // protected by HP_PREV.
        let observed = unsafe { self.prev.load(Ordering::Acquire) };
        if observed == self.chain {
            // Version re-check on top of the pointer comparison: a matching
            // address whose recycling-incarnation stamp moved means the
            // anchored chain head was reclaimed and the same memory
            // re-inserted here (ABA through the block pool).  The anchor
            // protection makes this impossible while it holds, so the check
            // is hardening for the eager-recycling schemes, where the stamp
            // is the paper-faithful detection primitive.
            //
            // SAFETY: `chain` is protected by HP_ANCHOR (or the guard's
            // era/epoch), so its header is readable.
            if unsafe { scot_smr::version_of(self.chain.untagged().as_ptr()) } == self.chain_version
            {
                Ok(())
            } else {
                Err(self.recover(g, observed))
            }
        } else {
            Err(self.recover(g, observed))
        }
    }

    /// Cleanup (L57-62): if a marked chain `[chain, curr)` is pending, unlink
    /// it with one CAS on the last safe node's link.  `retire` selects who
    /// owns the unlinked nodes: the lists retire the chain here (`Do_Retire`,
    /// L24-29 — the unlink winner is the unique retirer), while the skip list
    /// leaves retirement to each tower's elected remover, because a node
    /// unlinked from one level may still be reachable through another.
    pub(crate) fn unlink_pending<G: SmrGuard>(
        &mut self,
        g: &mut G,
        retire: bool,
    ) -> Result<(), Restart> {
        if self.chain.is_null() || self.chain == self.curr {
            return Ok(());
        }
        // SAFETY: `prev` is the head or a field of the HP_PREV node.
        if unsafe { self.prev.cas(self.chain, self.curr) }.is_err() {
            return Err(self.climb(g));
        }
        if retire {
            if crate::tuning::chain_batch_enabled() {
                // Hand the scheme whole chain segments through `retire_batch`
                // so the domain's retire bookkeeping (one vault mutex per
                // batch) is paid once per chunk instead of once per node.
                // The chunk buffer lives on the stack — no allocation on the
                // unlink path.
                const CHUNK: usize = 16;
                let mut buf = [Shared::null(); CHUNK];
                let mut n = 0;
                let mut cur = self.chain;
                while cur != self.curr {
                    debug_assert!(!cur.is_null(), "marked chain must end at `curr`");
                    // SAFETY: we won the unlink CAS, so this thread
                    // exclusively owns every node of the chain; the successor
                    // links of unlinked nodes are no longer written by anyone.
                    let next = unsafe { cur.deref().successor(self.level).load(Ordering::Acquire) };
                    buf[n] = cur;
                    n += 1;
                    if n == CHUNK {
                        // SAFETY: the unlink winner is the unique retirer of
                        // each chain node, and each appears in the batch once.
                        unsafe { g.retire_batch(&buf[..n]) };
                        n = 0;
                    }
                    cur = next.untagged();
                }
                if n > 0 {
                    // SAFETY: as above — unique retirer, no duplicates.
                    unsafe { g.retire_batch(&buf[..n]) };
                }
            } else {
                let mut cur = self.chain;
                while cur != self.curr {
                    debug_assert!(!cur.is_null(), "marked chain must end at `curr`");
                    // SAFETY: we won the unlink CAS, so this thread
                    // exclusively owns (and retires) every node of the chain;
                    // the successor links of unlinked nodes are no longer
                    // written by anyone.
                    unsafe {
                        let next = cur.deref().successor(self.level).load(Ordering::Acquire);
                        g.retire(cur);
                        cur = next.untagged();
                    }
                }
            }
        }
        self.chain = Shared::null();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Range-scan stepping
// ---------------------------------------------------------------------------

/// State of a guard-scoped range scan between two `next_entry` calls.
pub(crate) enum ScanState<K, N> {
    /// Position with a full validated seek for the first node in `bound`.
    Seek(SeekBound<K>),
    /// Parked on the last yielded node (still protected by `HP_CURR`);
    /// resume with the in-place step, falling back to a re-seek `> key` when
    /// the local neighborhood was disrupted.
    At(K, Shared<N>),
    /// Past the upper bound or the end of the structure.
    Done,
}

/// One in-place scan step from the parked node `curr` (protected by
/// `HP_CURR` since it was yielded): advances to the immediate successor if
/// the local neighborhood is still unmarked.
///
/// `Ok(Some(n))` — `n` is the next live node, now protected by `HP_CURR`.
/// `Ok(None)` — end of the level.
/// `Err(())` — `curr` or its successor is logically deleted; the scan must
/// re-position with a full validated seek (the cheap step must never walk a
/// marked chain, because that requires the dangerous-zone validation).
///
/// Safety of the step: `next` is protected by the protect's re-read against
/// `curr`'s successor link while `curr` is unmarked (its tag lives on that
/// very link) — an unmarked node is not yet unlinked, so the standard
/// read-from-unmarked-reachable-predecessor argument applies, with the parked
/// position in the role of the last safe node.
pub(crate) fn scan_step<K: Ord + Copy, N: SlotNode<K>, G: SmrGuard>(
    g: &mut G,
    curr: Shared<N>,
    level: usize,
) -> Result<Option<Shared<N>>, ()> {
    // SAFETY: `curr` is protected by HP_CURR (held since it was yielded; the
    // range holds the guard exclusively, so no other operation recycled it).
    let next = g.protect(HP_NEXT, unsafe { curr.deref().successor(level) });
    if next.tag() != 0 {
        // The parked node was logically deleted under us.
        return Err(());
    }
    if next.is_null() {
        return Ok(None);
    }
    g.dup(HP_CURR, HP_PREV);
    g.dup(HP_NEXT, HP_CURR);
    // SAFETY: `next` was published (HP_NEXT, now duplicated into HP_CURR) by
    // the protect that read it from the unmarked parked node.
    let peek = g.protect(HP_NEXT, unsafe { next.deref().successor(level) });
    if peek.tag() != 0 {
        // The successor is itself marked: skipping it means walking a chain,
        // which needs the full dangerous-zone discipline — re-seek.
        return Err(());
    }
    Ok(Some(next))
}

/// Drives one `next_entry` of a range scan end to end: positions on the next
/// live node via [`scan_next`] and hands out the guard-scoped `(key, &value)`
/// pair.  This is the single implementation behind every list-shaped
/// `RangeScan`; only the `seek` closure differs per structure.
pub(crate) fn scan_entry<'g, K: Ord + Copy, N: SlotNode<K>, G: SmrGuard>(
    g: &'g mut G,
    state: &mut ScanState<K, N>,
    hi: Option<&K>,
    level: usize,
    seek: impl FnMut(&mut G, &SeekBound<K>) -> Shared<N>,
) -> Option<(K, &'g N::Value)> {
    let node = scan_next(g, state, hi, level, seek);
    if node.is_null() {
        None
    } else {
        // SAFETY: `node` is protected by HP_CURR (by the seek or the step),
        // and the caller's exclusive `&'g mut` guard borrow keeps that slot
        // published until the next advance recycles it — at which point the
        // returned borrow is dead by the lending-iterator contract.
        let node_ref = unsafe { node.deref_guarded(&*g) };
        Some((*node_ref.node_key(), node_ref.node_value()))
    }
}

/// Drives one positioning step of a range scan: parks on the next live node
/// (via the in-place step or a structure-specific validated `seek`), applies
/// the upper bound, and updates the scan state.  Returns null when the scan
/// is exhausted.
pub(crate) fn scan_next<K: Ord + Copy, N: SlotNode<K>, G: SmrGuard>(
    g: &mut G,
    state: &mut ScanState<K, N>,
    hi: Option<&K>,
    level: usize,
    mut seek: impl FnMut(&mut G, &SeekBound<K>) -> Shared<N>,
) -> Shared<N> {
    loop {
        let node = match state {
            ScanState::Done => return Shared::null(),
            ScanState::Seek(bound) => seek(g, bound),
            ScanState::At(last, curr) => match scan_step(g, *curr, level) {
                Ok(Some(n)) => n,
                Ok(None) => {
                    *state = ScanState::Done;
                    return Shared::null();
                }
                Err(()) => {
                    *state = ScanState::Seek(SeekBound::Gt(*last));
                    continue;
                }
            },
        };
        if node.is_null() {
            *state = ScanState::Done;
            return Shared::null();
        }
        // SAFETY: `node` is protected by HP_CURR (by the seek or the step).
        let key = *unsafe { node.deref() }.node_key();
        if hi.is_some_and(|h| &key >= h) {
            *state = ScanState::Done;
            return Shared::null();
        }
        *state = ScanState::At(key, node);
        return node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_reads_all_counters() {
        let stats = TraversalStats::default();
        stats.record_restart();
        stats.record_restart();
        stats.record_recovery();
        stats.record_zone_entry();
        stats.record_zone_entry();
        stats.record_zone_entry();
        stats.record_spins(40);
        stats.record_spins(2);
        let snap = stats.snapshot();
        assert_eq!(snap.restarts, 2);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.zone_entries, 3);
        assert_eq!(snap.spins, 42);
        assert_eq!(stats.restarts(), 2);
        assert_eq!(stats.recoveries(), 1);
        assert_eq!(stats.zone_entries(), 3);
        assert_eq!(stats.spins(), 42);
    }

    #[test]
    fn snapshot_merge_is_componentwise() {
        let a = TraversalSnapshot {
            restarts: 1,
            recoveries: 2,
            zone_entries: 3,
            spins: 4,
        };
        let b = TraversalSnapshot {
            restarts: 10,
            recoveries: 20,
            zone_entries: 30,
            spins: 40,
        };
        assert_eq!(
            a.merged(b),
            TraversalSnapshot {
                restarts: 11,
                recoveries: 22,
                zone_entries: 33,
                spins: 44,
            }
        );
        assert_eq!(TraversalSnapshot::default().merged(a), a);
    }

    #[test]
    fn backoff_grows_caps_and_resets() {
        let _serial = crate::tuning::TEST_TOGGLE_LOCK.lock().unwrap();
        let stats = TraversalStats::default();
        // Fresh thread-local state on this test thread: consecutive failures
        // double the wait up to the cap.
        for _ in 0..8 {
            backoff(&stats);
        }
        // 1 + 2 + 4 + 8 + 16 + 32 + 64 + 64 (capped).
        assert_eq!(stats.spins(), 191);
        backoff_reset();
        backoff(&stats);
        assert_eq!(stats.spins(), 192, "reset restarts the ladder at 1 spin");
        backoff_reset();
        crate::tuning::set_backoff(false);
        backoff(&stats);
        assert_eq!(stats.spins(), 192, "disabled backoff is a strict no-op");
        crate::tuning::set_backoff(true);
    }

    #[test]
    fn seek_bound_semantics() {
        assert!(SeekBound::Ge(5).stops_at(&5));
        assert!(SeekBound::Ge(5).stops_at(&6));
        assert!(!SeekBound::Ge(5).stops_at(&4));
        assert!(!SeekBound::Gt(5).stops_at(&5));
        assert!(SeekBound::Gt(5).stops_at(&6));
    }
}
