//! The Harris-Michael lock-free ordered list (Michael 2002) — the baseline the
//! paper compares SCOT against (paper §2.4, "Why Michael's Approach Works").
//!
//! Michael's modification of Harris' list makes it compatible with hazard
//! pointers out of the box: whenever a traversal encounters a logically
//! deleted node it **immediately** attempts to unlink that single node and, if
//! the unlink CAS fails, restarts the whole traversal from the head.  The
//! successor of a marked node is therefore never traversed, which is exactly
//! the property plain HP needs — and exactly what costs performance: more CAS
//! operations under contention and a restart rate that grows with the thread
//! count (the paper's Table 2 measures 8.19% restarts at 256 threads versus
//! ≈0% for Harris' list with SCOT).
//!
//! The hazard-slot roles are the classic three: `Hp0` = next, `Hp1` = curr,
//! `Hp2` = prev (see [`crate::slots`]).  No dangerous zone ever forms, so no
//! anchor slot is needed — the shared `crate::traverse::Cursor` runs in its
//! `ZoneMode::Eager` for this list, where a marked node is unlinked on the
//! spot instead of validated past.
use crate::harris_list::Node;
use crate::slots::{HP_CURR, HP_NEXT};
use crate::traverse::{self, Cursor, ScanState, Seek, SeekBound, TraversalStats, ZoneMode, MARK};
use crate::{Key, RangeScan, TraversalSnapshot, Value};
use scot_smr::{Atomic, Link, Shared, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Result of the internal find.
struct FindResult<K, V> {
    prev: Link<Node<K, V>>,
    curr: Shared<Node<K, V>>,
    next: Shared<Node<K, V>>,
    found: bool,
}

/// Harris-Michael ordered map, parameterized by the reclamation scheme.  As
/// with every structure in this crate, `V = ()` (the default) gives the
/// membership set the paper benchmarks.
///
/// ```
/// use scot::{ConcurrentSet, HarrisMichaelList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let list: HarrisMichaelList<u64, Hp> =
///     HarrisMichaelList::new(Hp::new(SmrConfig::default()));
/// let mut h = list.handle();
/// assert!(list.insert(&mut h, 1));
/// assert!(list.remove(&mut h, &1));
/// ```
pub struct HarrisMichaelList<K, S: Smr, V = ()> {
    head: Atomic<Node<K, V>>,
    smr: Arc<S>,
    stats: TraversalStats,
}

// SAFETY: the structure owns its nodes; every cross-thread access goes through atomic links and the SMR protocol.
unsafe impl<K: Key, S: Smr, V: Value> Send for HarrisMichaelList<K, S, V> {}
// SAFETY: shared access is mediated by atomic links and guard-protected traversal; there is no unsynchronized interior mutability.
unsafe impl<K: Key, S: Smr, V: Value> Sync for HarrisMichaelList<K, S, V> {}

/// Per-thread handle for [`HarrisMichaelList`].
pub struct HmListHandle<S: Smr> {
    pub(crate) smr: S::Handle,
}

impl<S: Smr> HmListHandle<S> {
    /// Forces a reclamation pass on this thread's SMR handle.
    pub fn flush(&mut self) {
        self.smr.flush();
    }
}

impl<K: Key, S: Smr, V: Value> HarrisMichaelList<K, S, V> {
    /// Creates an empty list managed by the given reclamation domain.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Atomic::null(),
            smr,
            stats: TraversalStats::default(),
        }
    }

    /// Creates an empty list with a freshly created domain using `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::new(S::new(config))
    }

    /// The reclamation domain backing this list.
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> HmListHandle<S> {
        HmListHandle {
            smr: self.smr.register(),
        }
    }

    /// Number of full traversal restarts (Table 2).
    pub fn restarts(&self) -> u64 {
        self.stats.restarts()
    }

    /// The one positioning traversal of this list: the shared `Cursor` in
    /// `ZoneMode::Eager`, looping until a seek completes (every marked node
    /// on the way is unlinked by the cursor itself, so there is no separate
    /// cleanup phase).
    fn seek_bound<G: SmrGuard>(&self, g: &mut G, bound: &SeekBound<K>) -> FindResult<K, V> {
        loop {
            // The head link is never tagged, so `begin` cannot fail here.
            let Ok(mut c) = Cursor::begin(
                g,
                Shared::null(),
                self.head.as_link(),
                0,
                Shared::null(),
                true,
                &self.stats,
                ZoneMode::Eager,
            ) else {
                continue;
            };
            match c.seek(g, bound, || false) {
                Seek::Positioned => {}
                Seek::Restart(_) => continue,
                Seek::Interrupted => unreachable!("find has no interrupt source"),
            }
            let curr = c.curr();
            let found = !curr.is_null() && {
                match bound {
                    // SAFETY: `curr` is protected (HP_CURR) and durable.
                    SeekBound::Ge(k) => unsafe { curr.deref() }.key == *k,
                    SeekBound::Gt(_) => false,
                }
            };
            return FindResult {
                prev: c.prev_link(),
                curr,
                next: c.next(),
                found,
            };
        }
    }

    /// Michael's find: locate the position for `key`, eagerly unlinking any
    /// marked node encountered on the way (restarting if the unlink fails).
    fn find<G: SmrGuard>(&self, g: &mut G, key: &K) -> FindResult<K, V> {
        self.seek_bound(g, &SeekBound::Ge(*key))
    }

    /// Validated re-positioning primitive of the range scan, in the same
    /// eager mode as `find`.
    fn scan_seek<G: SmrGuard>(&self, g: &mut G, bound: &SeekBound<K>) -> Shared<Node<K, V>> {
        self.seek_bound(g, bound).curr
    }

    /// Brand check — see [`HarrisList::check_guard`](crate::HarrisList).
    #[inline]
    fn check_guard<G: SmrGuard>(&self, g: &G) {
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Visits every live entry in ascending key order (testing/diagnostics;
    /// not an atomic snapshot).
    fn walk<G: SmrGuard, F: FnMut(&K, &V)>(&self, g: &mut G, mut f: F) {
        let mut curr = g.protect(HP_CURR, &self.head);
        while !curr.is_null() {
            // SAFETY: see `find` — only used quiescently in tests.
            let node = unsafe { curr.deref() };
            let next = g.protect(HP_NEXT, &node.next);
            if next.tag() == 0 {
                f(&node.key, &node.value);
            }
            curr = next.untagged();
            g.dup(HP_NEXT, HP_CURR);
        }
    }
}

/// Guard-scoped range scan over a [`HarrisMichaelList`]; same lending
/// contract as [`crate::harris_list::ListRange`], with the eager-unlink
/// traversal as its re-positioning primitive.
pub struct HmRange<'r, 'h, K: Key, S: Smr, V: Value = ()> {
    list: &'r HarrisMichaelList<K, S, V>,
    guard: &'r mut <S::Handle as SmrHandle>::Guard<'h>,
    state: ScanState<K, Node<K, V>>,
    hi: Option<K>,
}

impl<'r, 'h, K: Key, S: Smr, V: Value> RangeScan<K, V> for HmRange<'r, 'h, K, S, V> {
    fn next_entry(&mut self) -> Option<(K, &V)> {
        let list = self.list;
        traverse::scan_entry(
            &mut *self.guard,
            &mut self.state,
            self.hi.as_ref(),
            0,
            |g, bound| list.scan_seek(g, bound),
        )
    }
}

impl<K: Key, S: Smr, V: Value> crate::ConcurrentMap<K, V> for HarrisMichaelList<K, S, V> {
    type Handle = HmListHandle<S>;
    type Guard<'h>
        = <S::Handle as SmrHandle>::Guard<'h>
    where
        Self: 'h;
    type Range<'r, 'h>
        = HmRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        HarrisMichaelList::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        handle.smr.pin()
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.check_guard(&*guard);
        guard.repin();
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let r = self.find(&mut *guard, key);
        if r.found {
            // SAFETY: `curr` is protected by HP_CURR; the `&'g mut` guard
            // borrow keeps that slot published while the borrow is alive.
            Some(&unsafe { r.curr.deref_guarded(&*guard) }.value)
        } else {
            None
        }
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.check_guard(&*guard);
        let mut r = self.find(&mut *guard, &key);
        if r.found {
            return Err(value);
        }
        let new = guard.alloc(Node {
            next: Atomic::null(),
            key,
            value,
        });
        loop {
            // SAFETY: exclusively owned until the publishing CAS.
            // ORDERING: the publishing CAS (Release) below makes this initialization visible.
            unsafe { new.deref().next.store(r.curr, Ordering::Relaxed) };
            // SAFETY: `prev` owner protected or head.
            if unsafe { r.prev.cas(r.curr, new) }.is_ok() {
                return Ok(());
            }
            r = self.find(&mut *guard, &key);
            if r.found {
                // SAFETY: `new` was never published; reclaim the block and
                // hand the caller's value back instead of dropping it.
                let node = unsafe { crate::take_unpublished(new) };
                return Err(node.value);
            }
        }
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        loop {
            let r = self.find(&mut *guard, key);
            if !r.found {
                return None;
            }
            // SAFETY: protected by HP_CURR.
            let curr_ref = unsafe { r.curr.deref() };
            if curr_ref
                .next
                .compare_exchange(
                    r.next,
                    r.next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // SAFETY: `prev` owner protected or head.
            if unsafe { r.prev.cas(r.curr, r.next) }.is_ok() {
                // SAFETY: unlink winner is the unique retirer.
                unsafe { guard.retire(r.curr) };
            } else {
                // Someone else will (or did) unlink it during their find.
            }
            // SAFETY: the victim stays protected by HP_CURR for as long as
            // the `&'g mut` guard borrow is alive (retire defers the free).
            return Some(&unsafe { r.curr.deref_guarded(&*guard) }.value);
        }
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.check_guard(&*guard);
        self.find(&mut *guard, key).found
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.check_guard(&*guard);
        HmRange {
            list: self,
            guard,
            state: ScanState::Seek(SeekBound::Ge(lo)),
            hi,
        }
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut g = handle.smr.pin();
        self.check_guard(&g);
        let mut out = Vec::new();
        self.walk(&mut g, |k, v| out.push((*k, v.clone())));
        out
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        self.stats.snapshot()
    }
}

impl<K, S: Smr, V> Drop for HarrisMichaelList<K, S, V> {
    fn drop(&mut self) {
        // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
        let mut curr = self.head.load(Ordering::Relaxed).untagged();
        while !curr.is_null() {
            // SAFETY: exclusive access during drop.
            unsafe {
                // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
                let next = curr.deref().next.load(Ordering::Relaxed).untagged();
                scot_smr::free_block(scot_smr::header_of(curr.as_ptr()));
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Vbr};

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    fn basic_set_semantics<S: Smr>() {
        let list: HarrisMichaelList<u64, S> = HarrisMichaelList::with_config(cfg());
        let mut h = list.handle();
        assert!(list.insert(&mut h, 10));
        assert!(list.insert(&mut h, 20));
        assert!(list.insert(&mut h, 15));
        assert!(!list.insert(&mut h, 15));
        assert!(list.contains(&mut h, &15));
        assert!(list.remove(&mut h, &15));
        assert!(!list.contains(&mut h, &15));
        assert_eq!(list.collect_keys(&mut h), vec![10, 20]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Nr>();
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<He>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
        basic_set_semantics::<Nbr>();
        basic_set_semantics::<Vbr>();
    }

    #[test]
    fn marked_nodes_are_unlinked_during_traversal() {
        // After removing interior keys, a subsequent contains() physically
        // cleans the list; all removed nodes must end up retired.
        let domain = Hp::new(cfg());
        let list: HarrisMichaelList<u64, Hp> = HarrisMichaelList::new(domain.clone());
        let mut h = list.handle();
        for i in 0..64 {
            list.insert(&mut h, i);
        }
        for i in 0..64 {
            if i % 2 == 0 {
                list.remove(&mut h, &i);
            }
        }
        // Traverse to the end to trigger any remaining cleanup.
        assert!(!list.contains(&mut h, &1000));
        h.smr.flush();
        drop(h);
        assert_eq!(domain.unreclaimed(), 0);
        let mut h = list.handle();
        assert_eq!(list.collect_keys(&mut h).len(), 32);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        fn run<S: Smr>() {
            let list: Arc<HarrisMichaelList<u32, S>> =
                Arc::new(HarrisMichaelList::with_config(cfg()));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let list = list.clone();
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut x = t as u64 + 1;
                        for _ in 0..3000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = (x % 64) as u32;
                            match x % 3 {
                                0 => {
                                    list.insert(&mut h, key);
                                }
                                1 => {
                                    list.remove(&mut h, &key);
                                }
                                _ => {
                                    list.contains(&mut h, &key);
                                }
                            }
                        }
                    });
                }
            });
            let mut h = list.handle();
            let keys = list.collect_keys(&mut h);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted);
        }
        run::<Hp>();
        run::<Ebr>();
        run::<Hyaline>();
        run::<Nbr>();
        run::<Vbr>();
    }

    #[test]
    fn agreement_with_harris_list_on_random_sequence() {
        use crate::HarrisList;
        let hm: HarrisMichaelList<u32, Hp> = HarrisMichaelList::with_config(cfg());
        let harris: HarrisList<u32, Hp> = HarrisList::with_config(cfg());
        let mut hh = hm.handle();
        let mut gh = harris.handle();
        let mut x = 0xdeadbeefu64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 128) as u32;
            match x % 3 {
                0 => assert_eq!(hm.insert(&mut hh, key), harris.insert(&mut gh, key)),
                1 => assert_eq!(hm.remove(&mut hh, &key), harris.remove(&mut gh, &key)),
                _ => assert_eq!(hm.contains(&mut hh, &key), harris.contains(&mut gh, &key)),
            }
        }
        assert_eq!(hm.collect_keys(&mut hh), harris.collect_keys(&mut gh));
    }
}
