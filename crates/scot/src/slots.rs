//! The **slot map**: one documented table assigning a role to every hazard
//! slot used anywhere in this crate.
//!
//! The paper's pseudocode (Figure 5, Figure 6) names hazard slots `Hp0`–`Hp4`
//! and gives each a fixed role per structure.  Before this module existed,
//! every structure re-declared its own copy of those constants; now the
//! assignment lives in exactly one place, shared by the [`crate::traverse`]
//! cursor and every structure built on it.
//!
//! | slot | list / skip-list role (Figure 5)       | NM-tree role (Figure 6) |
//! |------|----------------------------------------|-------------------------|
//! | 0    | [`HP_NEXT`] — next node                | [`HP_CHILD`] — child pointer being followed |
//! | 1    | [`HP_CURR`] — current node             | [`HP_LEAF`] — current leaf candidate |
//! | 2    | [`HP_PREV`] — last safe node           | [`HP_PARENT`] — parent of the leaf |
//! | 3    | [`HP_ANCHOR`] — first unsafe node      | [`HP_SUCC`] — successor (entrance of the tagged zone) |
//! | 4    | [`HP_ENTRY`] — level-entry restart anchor (skip list) | [`HP_ANC`] — ancestor (owner of the deepest untagged edge) |
//! | 5    | [`HP_VICTIM`] — removal victim, across cleanup traversals | same |
//! | 6    | [`HP_TOWER`] — the inserter's own tower during the build (skip list) | — |
//!
//! Two invariants make this table sound (paper §3.2):
//!
//! * `dup` only ever copies a **lower** slot into a **higher** slot on the
//!   traversal path (`0 → 1`, `1 → 2`, `1 → 3`, `2 → 4`, `1 → 5`), which
//!   together with ascending-order hazard scans closes the race window where a
//!   reclaimer could miss a protection mid-copy.  The two documented
//!   exceptions — the skip list's ladder publishing the entry node back into
//!   [`HP_PREV`], and nothing else — are sound because the source slot keeps
//!   the node continuously protected across the copy.
//! * Slots 5 and 6 are never touched by any traversal, so protections parked
//!   there survive the slot-0–4 recycling of nested cleanup traversals.
//!
//! `scot_smr::MAX_HAZARDS` (8) leaves one slot of headroom beyond this table.

/// Hazard slot protecting the next node on the current level's list.
pub const HP_NEXT: usize = 0;
/// Hazard slot protecting the current node.
pub const HP_CURR: usize = 1;
/// Hazard slot protecting the last safe (predecessor) node.
pub const HP_PREV: usize = 2;
/// Hazard slot protecting the first unsafe node of a dangerous zone
/// (the SCOT validation anchor, §3.2).
pub const HP_ANCHOR: usize = 3;
/// Hazard slot protecting the node the current skip-list level was entered
/// through — the restart-from-highest-valid-level anchor (ladder rung 2).
pub const HP_ENTRY: usize = 4;
/// Hazard slot protecting a removal victim across cleanup traversals, so the
/// value-returning `remove` can hand out a guard-scoped borrow after the seek
/// slots were recycled.
pub const HP_VICTIM: usize = 5;
/// Hazard slot protecting the skip-list inserter's own tower during the
/// tower build.
pub const HP_TOWER: usize = 6;

/// NM-tree alias of slot 0: the child pointer currently being followed.
pub const HP_CHILD: usize = HP_NEXT;
/// NM-tree alias of slot 1: the current leaf candidate.
pub const HP_LEAF: usize = HP_CURR;
/// NM-tree alias of slot 2: the parent of the leaf.
pub const HP_PARENT: usize = HP_PREV;
/// NM-tree alias of slot 3: the successor (entrance of the tagged zone).
pub const HP_SUCC: usize = HP_ANCHOR;
/// NM-tree alias of slot 4: the ancestor (owner of the deepest untagged edge).
pub const HP_ANC: usize = HP_ENTRY;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_map_fits_the_smr_budget() {
        // Every slot in the table must exist in the per-thread slot array.
        for slot in [
            HP_NEXT, HP_CURR, HP_PREV, HP_ANCHOR, HP_ENTRY, HP_VICTIM, HP_TOWER,
        ] {
            assert!(slot < scot_smr::MAX_HAZARDS, "slot {slot} out of budget");
        }
        // The tree aliases map onto the shared indices, not past them.
        assert_eq!(HP_CHILD, HP_NEXT);
        assert_eq!(HP_LEAF, HP_CURR);
        assert_eq!(HP_PARENT, HP_PREV);
        assert_eq!(HP_SUCC, HP_ANCHOR);
        assert_eq!(HP_ANC, HP_ENTRY);
    }
}
