//! Harris' lock-free ordered list with **SCOT** safe optimistic traversals
//! (paper §2.4, §3.2, Figure 5).
//!
//! Harris' list performs *logical* deletion by tagging the victim's `next`
//! pointer and defers the *physical* unlink: a later traversal removes a whole
//! chain of consecutively marked nodes with a single CAS, and `Search` simply
//! skips over marked nodes.  This is what makes it faster than the
//! Harris-Michael variant — fewer CAS operations and almost no restarts
//! (Table 2 of the paper) — but it is exactly what breaks hazard-pointer-style
//! reclamation: a traversal can step from a marked node to a successor that
//! has already been unlinked *and reclaimed* by someone else (Figure 2).
//!
//! SCOT's fix (§3.1): while traversing a chain of marked nodes (the
//! *dangerous zone*) keep one extra hazard slot on the **first unsafe node**
//! and, before every step deeper into the zone, validate that the **last safe
//! node still points at it**.  If the validation fails the chain may have been
//! unlinked, so the traversal either escapes to the last safe node's new
//! successor (§3.2.1 recovery) or restarts from the head.
//!
//! That protect → validate → recover loop is not implemented here: it lives,
//! exactly once, in [`crate::traverse`] as the `Cursor`, and this list is
//! its simplest client — one level, restart-from-head as the only restart
//! rung.  The hazard-slot roles are the Figure 5 assignment documented in
//! [`crate::slots`].

use crate::slots::{HP_CURR, HP_NEXT};
use crate::traverse::{
    self, Cursor, ScanState, Seek, SeekBound, SlotNode, TraversalStats, ZoneMode, MARK,
};
use crate::{Key, RangeScan, TraversalSnapshot, Value};
use scot_smr::{Atomic, Link, Shared, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A list node: key, value and the tagged successor pointer.
pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

impl<K: Key, V: Value> SlotNode<K> for Node<K, V> {
    type Value = V;

    #[inline]
    // SAFETY: `_level` is ignored -- a list node always has the single `next` link, so the call is unconditionally in bounds.
    unsafe fn successor(&self, _level: usize) -> &Atomic<Self> {
        &self.next
    }

    #[inline]
    fn node_key(&self) -> &K {
        &self.key
    }

    #[inline]
    fn node_value(&self) -> &V {
        &self.value
    }
}

/// Result of the internal `Do_Find`: the predecessor link and the protected
/// `curr`/`next` snapshot, exactly the triple the paper's pseudocode returns.
pub(crate) struct FindResult<K, V> {
    pub(crate) prev: Link<Node<K, V>>,
    pub(crate) curr: Shared<Node<K, V>>,
    pub(crate) next: Shared<Node<K, V>>,
    pub(crate) found: bool,
}

/// Harris' ordered map with SCOT traversals, parameterized by the reclamation
/// scheme.  The value type defaults to `()`, which is the membership-set
/// configuration the paper benchmarks (see [`crate::ConcurrentSet`]).
///
/// ```
/// use scot::{ConcurrentMap, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let list: HarrisList<u64, Hp, &'static str> =
///     HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&list);
/// let mut guard = list.pin(&mut handle);
/// assert!(list.insert(&mut guard, 7, "seven").is_ok());
/// assert_eq!(list.get(&mut guard, &7).copied(), Some("seven"));
/// // A conflicting insert hands the rejected value back.
/// assert_eq!(list.insert(&mut guard, 7, "again"), Err("again"));
/// // Remove returns one last guard-protected borrow of the evicted value.
/// assert_eq!(list.remove(&mut guard, &7).copied(), Some("seven"));
/// assert!(list.get(&mut guard, &7).is_none());
/// ```
///
/// Guard-scoped range scans come from the shared cursor as well:
///
/// ```
/// use scot::{ConcurrentMap, HarrisList, RangeScan};
/// use scot_smr::{Ibr, Smr, SmrConfig};
///
/// let list: HarrisList<u64, Ibr, u64> = HarrisList::new(Ibr::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&list);
/// let mut guard = list.pin(&mut handle);
/// for k in 0..10 {
///     list.insert(&mut guard, k, k * k).unwrap();
/// }
/// let mut scan = list.range(&mut guard, 3..7);
/// let mut seen = Vec::new();
/// while let Some((k, v)) = scan.next_entry() {
///     seen.push((k, *v));
/// }
/// assert_eq!(seen, vec![(3, 9), (4, 16), (5, 25), (6, 36)]);
/// ```
pub struct HarrisList<K, S: Smr, V = ()> {
    pub(crate) head: Atomic<Node<K, V>>,
    pub(crate) smr: Arc<S>,
    stats: TraversalStats,
    /// Whether the §3.2.1 recovery optimization is enabled (on by default;
    /// the ablation benchmark disables it to quantify its benefit).
    recovery: bool,
}

// SAFETY: the structure owns its nodes; every cross-thread access goes through atomic links and the SMR protocol.
unsafe impl<K: Key, S: Smr, V: Value> Send for HarrisList<K, S, V> {}
// SAFETY: shared access is mediated by atomic links and guard-protected traversal; there is no unsynchronized interior mutability.
unsafe impl<K: Key, S: Smr, V: Value> Sync for HarrisList<K, S, V> {}

/// Per-thread handle for [`HarrisList`].
pub struct HarrisListHandle<S: Smr> {
    pub(crate) smr: S::Handle,
}

impl<S: Smr> HarrisListHandle<S> {
    /// Forces a reclamation pass (limbo scan / epoch advance) on this
    /// thread's SMR handle; useful in tests and at controlled quiescence
    /// points.
    pub fn flush(&mut self) {
        self.smr.flush();
    }
}

impl<K: Key, S: Smr, V: Value> HarrisList<K, S, V> {
    /// Creates an empty list managed by the given reclamation domain.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Atomic::null(),
            smr,
            stats: TraversalStats::default(),
            recovery: true,
        }
    }

    /// Creates an empty list with a freshly created domain using `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::new(S::new(config))
    }

    /// Like [`HarrisList::new`], but with the §3.2.1 recovery optimization
    /// disabled: every dangerous-zone validation failure restarts from the
    /// head.  Used by the recovery ablation benchmark.
    pub fn without_recovery(smr: Arc<S>) -> Self {
        let mut list = Self::new(smr);
        list.recovery = false;
        list
    }

    /// The reclamation domain backing this list (used by the harness to read
    /// memory-overhead statistics).
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> HarrisListHandle<S> {
        HarrisListHandle {
            smr: self.smr.register(),
        }
    }

    /// Number of full traversal restarts (Table 2).
    pub fn restarts(&self) -> u64 {
        self.stats.restarts()
    }

    /// Number of §3.2.1 recovery events (dangerous-zone escapes that avoided a
    /// full restart); used by the recovery-optimization ablation benchmark.
    pub fn recoveries(&self) -> u64 {
        self.stats.recoveries()
    }

    /// The cursor mode this list traverses with.
    #[inline]
    fn mode(&self) -> ZoneMode {
        ZoneMode::Scot {
            recovery: self.recovery,
        }
    }

    /// The one positioning traversal of this list, driven by the shared
    /// `crate::traverse::Cursor`: parks on the first live node satisfying
    /// `bound`, looping until a seek completes.  `cleanup` selects whether a
    /// pending marked chain is unlinked and retired before returning
    /// (L57-62 + `Do_Retire`; searches and scans leave the chain in place).
    /// On return the hazard slots still protect `prev`, `curr` and `next`,
    /// so the caller can immediately use them for its insert/delete CAS.
    fn seek_bound<G: SmrGuard>(
        &self,
        g: &mut G,
        bound: &SeekBound<K>,
        cleanup: bool,
    ) -> FindResult<K, V> {
        loop {
            // The head link is never tagged, so `begin` cannot fail here; the
            // restart loop keeps the control flow total regardless.
            // Checkpoints are allowed: nothing protected survives across the
            // `continue` (insert's pending block is unpublished and owned, so
            // voiding the guard's slots cannot invalidate it).
            let Ok(mut c) = Cursor::begin(
                g,
                Shared::null(),
                self.head.as_link(),
                0,
                Shared::null(),
                true,
                &self.stats,
                self.mode(),
            ) else {
                continue;
            };
            match c.seek(g, bound, || false) {
                Seek::Positioned => {}
                Seek::Restart(_) => continue,
                Seek::Interrupted => unreachable!("find has no interrupt source"),
            }
            if cleanup && c.unlink_pending(g, true).is_err() {
                continue;
            }
            let curr = c.curr();
            let found = !curr.is_null() && {
                match bound {
                    // SAFETY: `curr` is protected (HP_CURR) and durable.
                    SeekBound::Ge(k) => unsafe { curr.deref() }.key == *k,
                    // A strict bound never "finds" its key.
                    SeekBound::Gt(_) => false,
                }
            };
            return FindResult {
                prev: c.prev_link(),
                curr,
                next: c.next(),
                found,
            };
        }
    }

    /// Internal `Do_Find` (Figure 5, right-hand unrolled version plus the
    /// §3.2.1 recovery optimization): [`HarrisList::seek_bound`] at the key.
    pub(crate) fn find<G: SmrGuard>(
        &self,
        g: &mut G,
        key: &K,
        is_search: bool,
    ) -> FindResult<K, V> {
        self.seek_bound(g, &SeekBound::Ge(*key), !is_search)
    }

    /// Positions [`crate::slots::HP_CURR`] on the first live node satisfying
    /// `bound` and returns it (null at the end of the list).  The validated
    /// re-positioning primitive of the range scan; shared with the hash map,
    /// whose buckets are instances of this list.
    pub(crate) fn scan_seek<G: SmrGuard>(
        &self,
        g: &mut G,
        bound: &SeekBound<K>,
    ) -> Shared<Node<K, V>> {
        self.seek_bound(g, bound, false).curr
    }

    /// Brand check: operations only accept guards pinned from a handle of
    /// this map's own reclamation domain.  A foreign guard would publish its
    /// hazard slots / epoch announcements into a *different* domain's tables —
    /// which no reclaimer of this domain ever scans — so accepting it would
    /// silently void every protection the guard-scoped API promises.  One
    /// pointer compare per operation buys back the soundness hole.
    #[inline]
    pub(crate) fn check_guard<G: SmrGuard>(&self, g: &G) {
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Visits every live entry in ascending key order, passing key and value
    /// borrows to `f`.  Shares [`crate::ConcurrentMap::collect`]'s caveats:
    /// the walk skips the SCOT validation, so it must not run concurrently
    /// with removals under a robust scheme.
    pub(crate) fn walk<G: SmrGuard, F: FnMut(&K, &V)>(&self, g: &mut G, mut f: F) {
        let mut curr = g.protect(HP_CURR, &self.head);
        while !curr.is_null() {
            // SAFETY: protected by HP_CURR / HP_NEXT ping-pong below.
            let node = unsafe { curr.deref() };
            let next = g.protect(HP_NEXT, &node.next);
            if next.tag() == 0 {
                f(&node.key, &node.value);
            }
            curr = next.untagged();
            g.dup(HP_NEXT, HP_CURR);
        }
    }
}

/// Guard-scoped range scan over a [`HarrisList`] (see
/// [`crate::ConcurrentMap::range`]): holds the guard exclusively for the
/// whole scan and parks on the last yielded node, which stays protected by
/// [`crate::slots::HP_CURR`] until the next advance.
pub struct ListRange<'r, 'h, K: Key, S: Smr, V: Value = ()> {
    list: &'r HarrisList<K, S, V>,
    guard: &'r mut <S::Handle as SmrHandle>::Guard<'h>,
    state: ScanState<K, Node<K, V>>,
    hi: Option<K>,
}

impl<'r, 'h, K: Key, S: Smr, V: Value> RangeScan<K, V> for ListRange<'r, 'h, K, S, V> {
    fn next_entry(&mut self) -> Option<(K, &V)> {
        let list = self.list;
        traverse::scan_entry(
            &mut *self.guard,
            &mut self.state,
            self.hi.as_ref(),
            0,
            |g, bound| list.scan_seek(g, bound),
        )
    }
}

impl<K: Key, S: Smr, V: Value> crate::ConcurrentMap<K, V> for HarrisList<K, S, V> {
    type Handle = HarrisListHandle<S>;
    type Guard<'h>
        = <S::Handle as SmrHandle>::Guard<'h>
    where
        Self: 'h;
    type Range<'r, 'h>
        = ListRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        HarrisList::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        handle.smr.pin()
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.check_guard(&*guard);
        guard.repin();
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let r = self.find(&mut *guard, key, true);
        if r.found {
            // SAFETY: `curr` is protected by HP_CURR (published with SCOT
            // validation during the find) and the `&'g mut` guard borrow
            // prevents any further operation from recycling that slot while
            // the returned value borrow is alive.
            Some(&unsafe { r.curr.deref_guarded(&*guard) }.value)
        } else {
            None
        }
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.check_guard(&*guard);
        let mut r = self.find(&mut *guard, &key, false);
        if r.found {
            return Err(value);
        }
        let new = guard.alloc(Node {
            next: Atomic::null(),
            key,
            value,
        });
        loop {
            // SAFETY: `new` is owned by us until the CAS below publishes it.
            // ORDERING: the publishing CAS (Release) below makes this initialization visible.
            unsafe { new.deref().next.store(r.curr, Ordering::Relaxed) };
            // SAFETY: `prev`'s owner is protected (HP_PREV) or is the head.
            if unsafe { r.prev.cas(r.curr, new) }.is_ok() {
                return Ok(());
            }
            r = self.find(&mut *guard, &key, false);
            if r.found {
                // A concurrent insert won the race after our first find.
                // SAFETY: `new` was never published; reclaim the block and
                // hand the caller's value back instead of dropping it.
                let node = unsafe { crate::take_unpublished(new) };
                return Err(node.value);
            }
        }
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        loop {
            let r = self.find(&mut *guard, key, false);
            if !r.found {
                return None;
            }
            // SAFETY: `curr` is protected (HP_CURR).
            let curr_ref = unsafe { r.curr.deref() };
            // Logical deletion: tag curr's next pointer (Figure 3, L21).
            if curr_ref
                .next
                .compare_exchange(
                    r.next,
                    r.next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // One attempt at physical unlinking (Figure 3, L22); if it fails a
            // later traversal will clean the node up and retire it.
            //
            // SAFETY: `prev`'s owner is protected (HP_PREV) or is the head.
            if unsafe { r.prev.cas(r.curr, r.next) }.is_ok() {
                // SAFETY: we won the unlink CAS, so we are the unique retirer.
                unsafe { guard.retire(r.curr) };
            }
            // SAFETY: the victim stays protected by HP_CURR — retiring does
            // not free, and no scheme reclaims a node covered by a published
            // hazard slot / live era reservation.  The `&'g mut` guard borrow
            // keeps that protection in place for the borrow's lifetime.
            return Some(&unsafe { r.curr.deref_guarded(&*guard) }.value);
        }
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.check_guard(&*guard);
        self.find(&mut *guard, key, true).found
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.check_guard(&*guard);
        ListRange {
            list: self,
            guard,
            state: ScanState::Seek(SeekBound::Ge(lo)),
            hi,
        }
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut g = handle.smr.pin();
        self.check_guard(&g);
        let mut out = Vec::new();
        self.walk(&mut g, |k, v| out.push((*k, v.clone())));
        out
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        self.stats.snapshot()
    }
}

impl<K, S: Smr, V> Drop for HarrisList<K, S, V> {
    fn drop(&mut self) {
        // Free every node still reachable from the head.  Retired nodes are no
        // longer reachable and are released by the reclamation domain.
        // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
        let mut curr = self.head.load(Ordering::Relaxed).untagged();
        while !curr.is_null() {
            // SAFETY: exclusive access during drop; each reachable node is
            // visited exactly once.
            unsafe {
                // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
                let next = curr.deref().next.load(Ordering::Relaxed).untagged();
                scot_smr::free_block(scot_smr::header_of(curr.as_ptr()));
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Vbr};

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    fn basic_set_semantics<S: Smr>() {
        let list: HarrisList<u64, S> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        assert!(!list.contains(&mut h, &5));
        assert!(list.insert(&mut h, 5));
        assert!(!list.insert(&mut h, 5), "duplicate insert must fail");
        assert!(list.insert(&mut h, 3));
        assert!(list.insert(&mut h, 9));
        assert!(list.contains(&mut h, &3));
        assert!(list.contains(&mut h, &5));
        assert!(list.contains(&mut h, &9));
        assert!(!list.contains(&mut h, &4));
        assert_eq!(list.collect_keys(&mut h), vec![3, 5, 9]);
        assert!(list.remove(&mut h, &5));
        assert!(!list.remove(&mut h, &5), "double remove must fail");
        assert!(!list.contains(&mut h, &5));
        assert_eq!(list.collect_keys(&mut h), vec![3, 9]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Nr>();
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<He>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
        basic_set_semantics::<Nbr>();
        basic_set_semantics::<Vbr>();
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let list: HarrisList<u32, Hp> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for k in [5u32, 1, 9, 3, 7, 3, 9, 0] {
            list.insert(&mut h, k);
        }
        let keys = list.collect_keys(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert_eq!(keys, vec![0, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_insert_remove_sequence() {
        let list: HarrisList<u64, Ebr> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..200u64 {
            assert!(list.insert(&mut h, i));
        }
        for i in (0..200u64).step_by(2) {
            assert!(list.remove(&mut h, &i));
        }
        for i in 0..200u64 {
            assert_eq!(list.contains(&mut h, &i), i % 2 == 1, "key {i}");
        }
        assert_eq!(list.collect_keys(&mut h).len(), 100);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::with_config(cfg()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..200u64 {
                        assert!(list.insert(&mut h, t * 1000 + i));
                    }
                });
            }
        });
        let mut h = list.handle();
        for t in 0..4u64 {
            for i in 0..200u64 {
                assert!(list.contains(&mut h, &(t * 1000 + i)));
            }
        }
        assert_eq!(list.collect_keys(&mut h).len(), 800);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        // Threads fight over a small key range; afterwards each key's
        // membership must be a valid boolean (no corruption / crash) and the
        // list must stay sorted & duplicate-free.
        fn run<S: Smr>() {
            let list: Arc<HarrisList<u32, S>> = Arc::new(HarrisList::with_config(cfg()));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let list = list.clone();
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut x = t as u64 + 1;
                        for _ in 0..3000 {
                            // xorshift
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = (x % 64) as u32;
                            match x % 3 {
                                0 => {
                                    list.insert(&mut h, key);
                                }
                                1 => {
                                    list.remove(&mut h, &key);
                                }
                                _ => {
                                    list.contains(&mut h, &key);
                                }
                            }
                        }
                    });
                }
            });
            let mut h = list.handle();
            let keys = list.collect_keys(&mut h);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted, "list must remain sorted and duplicate-free");
        }
        run::<Hp>();
        run::<Ebr>();
        run::<He>();
        run::<Ibr>();
        run::<Hyaline>();
        run::<Nbr>();
        run::<Vbr>();
    }

    #[test]
    fn all_retired_nodes_are_reclaimed_after_quiescence() {
        let domain = Hp::new(cfg());
        let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..500 {
                        let k = t * 10_000 + i;
                        list.insert(&mut h, k);
                        list.remove(&mut h, &k);
                    }
                    h.smr.flush();
                });
            }
        });
        let mut h = list.handle();
        h.smr.flush();
        drop(h);
        assert_eq!(
            domain.unreclaimed(),
            0,
            "no retired node may remain once quiescent"
        );
    }

    mod map_api {
        use super::cfg;
        use crate::{ConcurrentMap, HarrisList};
        use scot_smr::Hp;

        #[test]
        fn values_round_trip_and_conflicts_hand_values_back() {
            let list: HarrisList<u64, Hp, String> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, 1, "one".to_string()).is_ok());
                assert_eq!(
                    list.insert(&mut g, 1, "uno".to_string()),
                    Err("uno".to_string()),
                    "conflicting insert must hand the rejected value back"
                );
                assert_eq!(list.get(&mut g, &1).map(String::as_str), Some("one"));
                assert!(list.get(&mut g, &2).is_none());
                assert_eq!(
                    list.remove(&mut g, &1).map(String::as_str),
                    Some("one"),
                    "remove must expose the evicted value under the guard"
                );
                assert!(list.remove(&mut g, &1).is_none());
            }
            assert!(list.collect(&mut h).is_empty());
        }

        #[test]
        fn collect_returns_sorted_entries() {
            let list: HarrisList<u32, Hp, u32> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            for k in [5u32, 1, 9, 3] {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, k, k * 10).is_ok());
            }
            assert_eq!(
                list.collect(&mut h),
                vec![(1, 10), (3, 30), (5, 50), (9, 90)]
            );
        }
    }

    mod range_api {
        use super::cfg;
        use crate::{ConcurrentMap, HarrisList, RangeScan};
        use scot_smr::Hp;

        #[test]
        fn range_yields_sorted_window_and_iter_from_runs_to_end() {
            let list: HarrisList<u64, Hp, u64> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            let mut g = list.pin(&mut h);
            for k in (0..50u64).rev() {
                list.insert(&mut g, k, k + 100).unwrap();
            }
            let mut scan = list.range(&mut g, 10..15);
            let mut seen = Vec::new();
            while let Some((k, v)) = scan.next_entry() {
                seen.push((k, *v));
            }
            assert_eq!(seen, (10..15).map(|k| (k, k + 100)).collect::<Vec<_>>());
            #[allow(clippy::drop_non_drop)] // ends the scan's guard borrow
            drop(scan);
            let mut tail = list.iter_from(&mut g, 47);
            let mut seen = Vec::new();
            while let Some((k, _)) = tail.next_entry() {
                seen.push(k);
            }
            assert_eq!(seen, vec![47, 48, 49]);
        }

        #[test]
        #[allow(clippy::reversed_empty_ranges)] // inverted windows are the point
        fn empty_and_inverted_windows_yield_nothing() {
            let list: HarrisList<u64, Hp, u64> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            let mut g = list.pin(&mut h);
            for k in 0..10u64 {
                list.insert(&mut g, k, k).unwrap();
            }
            assert!(list.range(&mut g, 3..3).next_entry().is_none());
            assert!(list.range(&mut g, 7..3).next_entry().is_none());
            assert!(list.range(&mut g, 100..200).next_entry().is_none());
        }
    }

    #[test]
    fn restart_counter_stays_zero_single_threaded() {
        let list: HarrisList<u64, Hp> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..100 {
            list.insert(&mut h, i);
        }
        for i in 0..100 {
            list.remove(&mut h, &i);
        }
        assert_eq!(list.restarts(), 0);
    }
}
