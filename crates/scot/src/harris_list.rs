//! Harris' lock-free ordered list with **SCOT** safe optimistic traversals
//! (paper §2.4, §3.2, Figure 5).
//!
//! Harris' list performs *logical* deletion by tagging the victim's `next`
//! pointer and defers the *physical* unlink: a later traversal removes a whole
//! chain of consecutively marked nodes with a single CAS, and `Search` simply
//! skips over marked nodes.  This is what makes it faster than the
//! Harris-Michael variant — fewer CAS operations and almost no restarts
//! (Table 2 of the paper) — but it is exactly what breaks hazard-pointer-style
//! reclamation: a traversal can step from a marked node to a successor that
//! has already been unlinked *and reclaimed* by someone else (Figure 2).
//!
//! SCOT's fix (§3.1): while traversing a chain of marked nodes (the
//! *dangerous zone*) keep one extra hazard slot on the **first unsafe node**
//! and, before every step deeper into the zone, validate that the **last safe
//! node still points at it**.  If the validation fails the chain may have been
//! unlinked, so the traversal either escapes to the last safe node's new
//! successor (§3.2.1 recovery) or restarts from the head.
//!
//! Hazard-slot roles (Figure 5):
//!
//! | slot | role |
//! |------|------|
//! | `Hp0` | next node (`next`) |
//! | `Hp1` | current node (`curr`) |
//! | `Hp2` | last safe node (`prev`) |
//! | `Hp3` | first unsafe node (dangerous-zone anchor) |
//!
//! `dup` always copies a lower slot into a higher slot, which together with
//! ascending-order scans closes the race window discussed in §3.2.
//!
//! One deliberate deviation from Figure 5 (right): the dangerous-zone
//! validation is performed **before** the successor of the first unsafe node
//! is dereferenced (i.e. it is hoisted to the zone entry), matching the
//! simple variant on the figure's left and the prose of §3.1.  As printed, the
//! unrolled pseudocode issues its first validation only after one dereference
//! into the zone, which would leave a window on the very first step.

use crate::{Key, Stats, Value};
use scot_smr::{Atomic, Link, Shared, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Hazard slot protecting the next node.
pub(crate) const HP_NEXT: usize = 0;
/// Hazard slot protecting the current node.
pub(crate) const HP_CURR: usize = 1;
/// Hazard slot protecting the last safe (predecessor) node.
pub(crate) const HP_PREV: usize = 2;
/// Hazard slot protecting the first unsafe node of a dangerous zone.
pub(crate) const HP_ANCHOR: usize = 3;

/// Tag bit marking a node as logically deleted (stored in the node's own
/// `next` pointer, exactly as in Harris' original algorithm).
pub(crate) const MARK: usize = 1;

/// A list node: key, value and the tagged successor pointer.
pub(crate) struct Node<K, V> {
    pub(crate) next: Atomic<Node<K, V>>,
    pub(crate) key: K,
    pub(crate) value: V,
}

/// Result of the internal `Do_Find`: the predecessor link and the protected
/// `curr`/`next` snapshot, exactly the triple the paper's pseudocode returns.
pub(crate) struct FindResult<K, V> {
    pub(crate) prev: Link<Node<K, V>>,
    pub(crate) curr: Shared<Node<K, V>>,
    pub(crate) next: Shared<Node<K, V>>,
    pub(crate) found: bool,
}

/// Harris' ordered map with SCOT traversals, parameterized by the reclamation
/// scheme.  The value type defaults to `()`, which is the membership-set
/// configuration the paper benchmarks (see [`crate::ConcurrentSet`]).
///
/// ```
/// use scot::{ConcurrentMap, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let list: HarrisList<u64, Hp, &'static str> =
///     HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&list);
/// let mut guard = list.pin(&mut handle);
/// assert!(list.insert(&mut guard, 7, "seven").is_ok());
/// assert_eq!(list.get(&mut guard, &7).copied(), Some("seven"));
/// // A conflicting insert hands the rejected value back.
/// assert_eq!(list.insert(&mut guard, 7, "again"), Err("again"));
/// // Remove returns one last guard-protected borrow of the evicted value.
/// assert_eq!(list.remove(&mut guard, &7).copied(), Some("seven"));
/// assert!(list.get(&mut guard, &7).is_none());
/// ```
pub struct HarrisList<K, S: Smr, V = ()> {
    pub(crate) head: Atomic<Node<K, V>>,
    pub(crate) smr: Arc<S>,
    stats: Stats,
    /// Whether the §3.2.1 recovery optimization is enabled (on by default;
    /// the ablation benchmark disables it to quantify its benefit).
    recovery: bool,
}

unsafe impl<K: Key, S: Smr, V: Value> Send for HarrisList<K, S, V> {}
unsafe impl<K: Key, S: Smr, V: Value> Sync for HarrisList<K, S, V> {}

/// Per-thread handle for [`HarrisList`].
pub struct HarrisListHandle<S: Smr> {
    pub(crate) smr: S::Handle,
}

impl<S: Smr> HarrisListHandle<S> {
    /// Forces a reclamation pass (limbo scan / epoch advance) on this
    /// thread's SMR handle; useful in tests and at controlled quiescence
    /// points.
    pub fn flush(&mut self) {
        self.smr.flush();
    }
}

impl<K: Key, S: Smr, V: Value> HarrisList<K, S, V> {
    /// Creates an empty list managed by the given reclamation domain.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: Atomic::null(),
            smr,
            stats: Stats::default(),
            recovery: true,
        }
    }

    /// Creates an empty list with a freshly created domain using `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::new(S::new(config))
    }

    /// Like [`HarrisList::new`], but with the §3.2.1 recovery optimization
    /// disabled: every dangerous-zone validation failure restarts from the
    /// head.  Used by the recovery ablation benchmark.
    pub fn without_recovery(smr: Arc<S>) -> Self {
        let mut list = Self::new(smr);
        list.recovery = false;
        list
    }

    /// The reclamation domain backing this list (used by the harness to read
    /// memory-overhead statistics).
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> HarrisListHandle<S> {
        HarrisListHandle {
            smr: self.smr.register(),
        }
    }

    /// Number of full traversal restarts (Table 2).
    pub fn restarts(&self) -> u64 {
        self.stats.restarts()
    }

    /// Number of §3.2.1 recovery events (dangerous-zone escapes that avoided a
    /// full restart); used by the recovery-optimization ablation benchmark.
    pub fn recoveries(&self) -> u64 {
        self.stats.recoveries()
    }

    /// Internal `Do_Find` (Figure 5, right-hand unrolled version plus the
    /// §3.2.1 recovery optimization).  On return the hazard slots still
    /// protect `prev`, `curr` and `next`, so the caller can immediately use
    /// them for its insert/delete CAS.
    pub(crate) fn find<G: SmrGuard>(
        &self,
        g: &mut G,
        key: &K,
        is_search: bool,
    ) -> FindResult<K, V> {
        'restart: loop {
            // L33-36: start from the implicit pre-head sentinel (&Head).
            let mut prev: Link<Node<K, V>> = self.head.as_link();
            let mut prev_next: Shared<Node<K, V>> = Shared::null();
            let mut curr = g.protect(HP_CURR, &self.head);
            let mut next = if curr.is_null() {
                Shared::null()
            } else {
                // SAFETY: `curr` was protected against the head link; the head
                // is never deallocated and the protect re-read confirmed the
                // head still points at `curr`, so `curr` was not yet retired
                // when the protection became visible.
                g.protect(HP_NEXT, unsafe { &curr.deref().next })
            };

            'traverse: loop {
                // ---------- Phase 1: safe zone (L38-47) ----------
                loop {
                    if curr.is_null() {
                        break 'traverse;
                    }
                    if next.tag() != 0 {
                        // `curr` is logically deleted: switch to Phase 2.
                        break;
                    }
                    // SAFETY: `curr` is protected and was validated reachable
                    // from an unmarked predecessor when that protection was
                    // published (standard Harris-Michael argument), or by the
                    // SCOT validation when arriving from a dangerous zone.
                    let curr_ref = unsafe { curr.deref() };
                    if curr_ref.key >= *key {
                        break 'traverse;
                    }
                    // Advance: `curr` becomes the last safe node.
                    prev = curr_ref.next.as_link();
                    prev_next = Shared::null();
                    g.dup(HP_CURR, HP_PREV);
                    curr = next;
                    if curr.is_null() {
                        break 'traverse;
                    }
                    g.dup(HP_NEXT, HP_CURR);
                    // SAFETY: `curr` was published (HP_NEXT) by the protect
                    // that read it from an unmarked predecessor, hence durable.
                    next = g.protect(HP_NEXT, unsafe { &curr.deref().next });
                }

                // ---------- Phase 2: dangerous zone (L48-56) ----------
                // `curr` is the first unsafe node; anchor it in Hp3 so the
                // validation below can rely on pointer comparison even if the
                // zone is concurrently unlinked (ABA prevention, §3.2).
                g.dup(HP_CURR, HP_ANCHOR);
                prev_next = curr;
                loop {
                    // SCOT validation: the last safe node must still point at
                    // the first unsafe node.  Performed *before* dereferencing
                    // deeper into the zone (see the module documentation).
                    //
                    // SAFETY: `prev` is either the list head or a field of the
                    // node protected by HP_PREV.
                    let observed = unsafe { prev.load(Ordering::Acquire) };
                    if observed != prev_next {
                        // §3.2.1 recovery: if the last safe node is still not
                        // logically deleted it merely points at a new
                        // successor (a fresh insert, or the chain has already
                        // been cleaned up); continue from there instead of
                        // restarting from the head.
                        if observed.tag() == 0 && self.recovery {
                            self.stats.record_recovery();
                            // SAFETY: as above; the protect re-reads the link,
                            // and the owner of `prev` is unmarked, so the
                            // returned pointer was not retired when published.
                            curr = g.protect(HP_CURR, unsafe { prev.as_atomic() });
                            if curr.tag() != 0 {
                                // The last safe node got marked after all.
                                self.stats.record_restart();
                                continue 'restart;
                            }
                            prev_next = Shared::null();
                            if curr.is_null() {
                                next = Shared::null();
                                break 'traverse;
                            }
                            // SAFETY: protected and validated just above.
                            next = g.protect(HP_NEXT, unsafe { &curr.deref().next });
                            continue 'traverse;
                        }
                        self.stats.record_restart();
                        continue 'restart;
                    }
                    if next.tag() == 0 {
                        // End of the marked chain: back to the safe zone with
                        // the pending cleanup information intact.
                        continue 'traverse;
                    }
                    // Step deeper into the zone.
                    curr = next.untagged();
                    if curr.is_null() {
                        break 'traverse;
                    }
                    g.dup(HP_NEXT, HP_CURR);
                    // SAFETY: `curr` was published in HP_NEXT by the protect
                    // that read it, and the validation above confirmed the
                    // zone was still linked after that publication, so the
                    // protection is durable (Theorem 2).
                    next = g.protect(HP_NEXT, unsafe { &curr.deref().next });
                }
            }

            // ---------- Cleanup + output (L57-62) ----------
            if !is_search && !prev_next.is_null() && prev_next != curr {
                // Unlink the chain of marked nodes [prev_next, curr) with one
                // CAS; on failure another thread changed the link, restart.
                //
                // SAFETY: `prev`'s owner is protected (HP_PREV) or is the head.
                if unsafe { prev.cas(prev_next, curr) }.is_err() {
                    self.stats.record_restart();
                    continue 'restart;
                }
                // SAFETY: we won the unlink CAS, so this thread exclusively
                // retires the chain (Do_Retire, Figure 5 L24-29).
                unsafe { self.retire_chain(g, prev_next, curr) };
            }

            let found = !curr.is_null() && {
                // SAFETY: `curr` is protected (HP_CURR) and durable.
                unsafe { curr.deref() }.key == *key
            };
            return FindResult {
                prev,
                curr,
                next,
                found,
            };
        }
    }

    /// Retires every node of the just-unlinked chain `[from, to)`.
    ///
    /// # Safety
    /// The caller must have won the unlink CAS that removed exactly this chain
    /// from the list, which makes it the unique retirer of these nodes.
    unsafe fn retire_chain<G: SmrGuard>(
        &self,
        g: &mut G,
        from: Shared<Node<K, V>>,
        to: Shared<Node<K, V>>,
    ) {
        let mut cur = from;
        while cur != to {
            debug_assert!(!cur.is_null(), "marked chain must end at `to`");
            let next = cur.deref().next.load(Ordering::Acquire).untagged();
            g.retire(cur);
            cur = next;
        }
    }

    /// Brand check: operations only accept guards pinned from a handle of
    /// this map's own reclamation domain.  A foreign guard would publish its
    /// hazard slots / epoch announcements into a *different* domain's tables —
    /// which no reclaimer of this domain ever scans — so accepting it would
    /// silently void every protection the guard-scoped API promises.  One
    /// pointer compare per operation buys back the soundness hole.
    #[inline]
    pub(crate) fn check_guard<G: SmrGuard>(&self, g: &G) {
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Visits every live entry in ascending key order, passing key and value
    /// borrows to `f`.  Shares [`crate::ConcurrentMap::collect`]'s caveats:
    /// the walk skips the SCOT validation, so it must not run concurrently
    /// with removals under a robust scheme.
    pub(crate) fn walk<G: SmrGuard, F: FnMut(&K, &V)>(&self, g: &mut G, mut f: F) {
        let mut curr = g.protect(HP_CURR, &self.head);
        while !curr.is_null() {
            // SAFETY: protected by HP_CURR / HP_NEXT ping-pong below.
            let node = unsafe { curr.deref() };
            let next = g.protect(HP_NEXT, &node.next);
            if next.tag() == 0 {
                f(&node.key, &node.value);
            }
            curr = next.untagged();
            g.dup(HP_NEXT, HP_CURR);
        }
    }
}

impl<K: Key, S: Smr, V: Value> crate::ConcurrentMap<K, V> for HarrisList<K, S, V> {
    type Handle = HarrisListHandle<S>;
    type Guard<'h>
        = <S::Handle as SmrHandle>::Guard<'h>
    where
        Self: 'h;

    fn handle(&self) -> Self::Handle {
        HarrisList::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        handle.smr.pin()
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let r = self.find(&mut *guard, key, true);
        if r.found {
            // SAFETY: `curr` is protected by HP_CURR (published with SCOT
            // validation during the find) and the `&'g mut` guard borrow
            // prevents any further operation from recycling that slot while
            // the returned value borrow is alive.
            Some(&unsafe { r.curr.deref_guarded(&*guard) }.value)
        } else {
            None
        }
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.check_guard(&*guard);
        let mut r = self.find(&mut *guard, &key, false);
        if r.found {
            return Err(value);
        }
        let new = guard.alloc(Node {
            next: Atomic::null(),
            key,
            value,
        });
        loop {
            // SAFETY: `new` is owned by us until the CAS below publishes it.
            unsafe { new.deref().next.store(r.curr, Ordering::Relaxed) };
            // SAFETY: `prev`'s owner is protected (HP_PREV) or is the head.
            if unsafe { r.prev.cas(r.curr, new) }.is_ok() {
                return Ok(());
            }
            r = self.find(&mut *guard, &key, false);
            if r.found {
                // A concurrent insert won the race after our first find.
                // SAFETY: `new` was never published; reclaim the block and
                // hand the caller's value back instead of dropping it.
                let node = unsafe { crate::take_unpublished(new) };
                return Err(node.value);
            }
        }
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        loop {
            let r = self.find(&mut *guard, key, false);
            if !r.found {
                return None;
            }
            // SAFETY: `curr` is protected (HP_CURR).
            let curr_ref = unsafe { r.curr.deref() };
            // Logical deletion: tag curr's next pointer (Figure 3, L21).
            if curr_ref
                .next
                .compare_exchange(
                    r.next,
                    r.next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // One attempt at physical unlinking (Figure 3, L22); if it fails a
            // later traversal will clean the node up and retire it.
            //
            // SAFETY: `prev`'s owner is protected (HP_PREV) or is the head.
            if unsafe { r.prev.cas(r.curr, r.next) }.is_ok() {
                // SAFETY: we won the unlink CAS, so we are the unique retirer.
                unsafe { guard.retire(r.curr) };
            }
            // SAFETY: the victim stays protected by HP_CURR — retiring does
            // not free, and no scheme reclaims a node covered by a published
            // hazard slot / live era reservation.  The `&'g mut` guard borrow
            // keeps that protection in place for the borrow's lifetime.
            return Some(&unsafe { r.curr.deref_guarded(&*guard) }.value);
        }
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.check_guard(&*guard);
        self.find(&mut *guard, key, true).found
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut g = handle.smr.pin();
        self.check_guard(&g);
        let mut out = Vec::new();
        self.walk(&mut g, |k, v| out.push((*k, v.clone())));
        out
    }

    fn restart_count(&self) -> u64 {
        self.stats.restarts()
    }
}

impl<K, S: Smr, V> Drop for HarrisList<K, S, V> {
    fn drop(&mut self) {
        // Free every node still reachable from the head.  Retired nodes are no
        // longer reachable and are released by the reclamation domain.
        let mut curr = self.head.load(Ordering::Relaxed).untagged();
        while !curr.is_null() {
            // SAFETY: exclusive access during drop; each reachable node is
            // visited exactly once.
            unsafe {
                let next = curr.deref().next.load(Ordering::Relaxed).untagged();
                scot_smr::free_block(scot_smr::header_of(curr.as_ptr()));
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nr};

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    fn basic_set_semantics<S: Smr>() {
        let list: HarrisList<u64, S> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        assert!(!list.contains(&mut h, &5));
        assert!(list.insert(&mut h, 5));
        assert!(!list.insert(&mut h, 5), "duplicate insert must fail");
        assert!(list.insert(&mut h, 3));
        assert!(list.insert(&mut h, 9));
        assert!(list.contains(&mut h, &3));
        assert!(list.contains(&mut h, &5));
        assert!(list.contains(&mut h, &9));
        assert!(!list.contains(&mut h, &4));
        assert_eq!(list.collect_keys(&mut h), vec![3, 5, 9]);
        assert!(list.remove(&mut h, &5));
        assert!(!list.remove(&mut h, &5), "double remove must fail");
        assert!(!list.contains(&mut h, &5));
        assert_eq!(list.collect_keys(&mut h), vec![3, 9]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Nr>();
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<He>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let list: HarrisList<u32, Hp> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for k in [5u32, 1, 9, 3, 7, 3, 9, 0] {
            list.insert(&mut h, k);
        }
        let keys = list.collect_keys(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert_eq!(keys, vec![0, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_insert_remove_sequence() {
        let list: HarrisList<u64, Ebr> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..200u64 {
            assert!(list.insert(&mut h, i));
        }
        for i in (0..200u64).step_by(2) {
            assert!(list.remove(&mut h, &i));
        }
        for i in 0..200u64 {
            assert_eq!(list.contains(&mut h, &i), i % 2 == 1, "key {i}");
        }
        assert_eq!(list.collect_keys(&mut h).len(), 100);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::with_config(cfg()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..200u64 {
                        assert!(list.insert(&mut h, t * 1000 + i));
                    }
                });
            }
        });
        let mut h = list.handle();
        for t in 0..4u64 {
            for i in 0..200u64 {
                assert!(list.contains(&mut h, &(t * 1000 + i)));
            }
        }
        assert_eq!(list.collect_keys(&mut h).len(), 800);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        // Threads fight over a small key range; afterwards each key's
        // membership must be a valid boolean (no corruption / crash) and the
        // list must stay sorted & duplicate-free.
        fn run<S: Smr>() {
            let list: Arc<HarrisList<u32, S>> = Arc::new(HarrisList::with_config(cfg()));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let list = list.clone();
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut x = t as u64 + 1;
                        for _ in 0..3000 {
                            // xorshift
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = (x % 64) as u32;
                            match x % 3 {
                                0 => {
                                    list.insert(&mut h, key);
                                }
                                1 => {
                                    list.remove(&mut h, &key);
                                }
                                _ => {
                                    list.contains(&mut h, &key);
                                }
                            }
                        }
                    });
                }
            });
            let mut h = list.handle();
            let keys = list.collect_keys(&mut h);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted, "list must remain sorted and duplicate-free");
        }
        run::<Hp>();
        run::<Ebr>();
        run::<He>();
        run::<Ibr>();
        run::<Hyaline>();
    }

    #[test]
    fn all_retired_nodes_are_reclaimed_after_quiescence() {
        let domain = Hp::new(cfg());
        let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..500 {
                        let k = t * 10_000 + i;
                        list.insert(&mut h, k);
                        list.remove(&mut h, &k);
                    }
                    h.smr.flush();
                });
            }
        });
        let mut h = list.handle();
        h.smr.flush();
        drop(h);
        assert_eq!(
            domain.unreclaimed(),
            0,
            "no retired node may remain once quiescent"
        );
    }

    mod map_api {
        use super::cfg;
        use crate::{ConcurrentMap, HarrisList};
        use scot_smr::Hp;

        #[test]
        fn values_round_trip_and_conflicts_hand_values_back() {
            let list: HarrisList<u64, Hp, String> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, 1, "one".to_string()).is_ok());
                assert_eq!(
                    list.insert(&mut g, 1, "uno".to_string()),
                    Err("uno".to_string()),
                    "conflicting insert must hand the rejected value back"
                );
                assert_eq!(list.get(&mut g, &1).map(String::as_str), Some("one"));
                assert!(list.get(&mut g, &2).is_none());
                assert_eq!(
                    list.remove(&mut g, &1).map(String::as_str),
                    Some("one"),
                    "remove must expose the evicted value under the guard"
                );
                assert!(list.remove(&mut g, &1).is_none());
            }
            assert!(list.collect(&mut h).is_empty());
        }

        #[test]
        fn collect_returns_sorted_entries() {
            let list: HarrisList<u32, Hp, u32> = HarrisList::with_config(cfg());
            let mut h = list.handle();
            for k in [5u32, 1, 9, 3] {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, k, k * 10).is_ok());
            }
            assert_eq!(
                list.collect(&mut h),
                vec![(1, 10), (3, 30), (5, 50), (9, 90)]
            );
        }
    }

    #[test]
    fn restart_counter_stays_zero_single_threaded() {
        let list: HarrisList<u64, Hp> = HarrisList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..100 {
            list.insert(&mut h, i);
        }
        for i in 0..100 {
            list.remove(&mut h, &i);
        }
        assert_eq!(list.restarts(), 0);
    }
}
