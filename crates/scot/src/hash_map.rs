//! Lock-free hash set built, exactly as the paper notes in §2.3 and §6.2, as
//! an array of Harris lists ("hash maps ... are simply arrays of Harris' or
//! Harris-Michael lists").
//!
//! Keys are partitioned into a fixed number of buckets by a multiplicative
//! hash; each bucket is an independent [`HarrisList`] (with SCOT traversals),
//! and all buckets share one reclamation domain so memory-overhead accounting
//! matches the paper's methodology.

use crate::harris_list::{HarrisList, HarrisListHandle, Node};
use crate::traverse::{ScanState, SeekBound};
use crate::{ConcurrentMap, Key, RangeScan, TraversalSnapshot, Value};
use scot_smr::{Smr, SmrConfig, SmrHandle};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// 2^64 / φ — the Fibonacci hashing constant (Knuth, TAOCP vol. 3 §6.4).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A Fibonacci multiplicative hasher: zero setup cost (unlike `DefaultHasher`,
/// whose SipHash state costs more to initialize than a whole bucket lookup)
/// and excellent bucket spread for the sequential integer keys the harness
/// draws.  Not DoS-resistant, which is irrelevant for a benchmark structure.
struct FibHasher(u64);

impl Hasher for FibHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold arbitrary bytes 8 at a time; each chunk is mixed with one
        // multiply, keeping the generic path multiplicative as well.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(buf)).wrapping_mul(FIB);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FIB);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiplicative mix concentrates entropy in the high bits, which
        // is exactly what the widening-multiply range reduction consumes.
        self.0
    }
}

/// A lock-free hash map: `buckets` Harris lists sharing one SMR domain
/// (`V = ()` gives the hash *set* of the paper's Table 1).
///
/// ```
/// use scot::{ConcurrentMap, HashMap};
/// use scot_smr::{Ibr, Smr, SmrConfig};
///
/// let map: HashMap<u64, Ibr, String> = HashMap::with_config(64, SmrConfig::default());
/// let mut h = ConcurrentMap::handle(&map);
/// let mut g = map.pin(&mut h);
/// assert!(map.insert(&mut g, 42, "answer".into()).is_ok());
/// assert_eq!(map.get(&mut g, &42).map(String::as_str), Some("answer"));
/// assert_eq!(map.remove(&mut g, &42).map(String::as_str), Some("answer"));
/// ```
pub struct HashMap<K, S: Smr, V = ()> {
    buckets: Box<[HarrisList<K, S, V>]>,
    smr: Arc<S>,
}

/// Per-thread handle for [`HashMap`].
pub struct HashMapHandle<S: Smr> {
    inner: HarrisListHandle<S>,
}

impl<S: Smr> HashMapHandle<S> {
    /// Forces a reclamation pass on this thread's SMR handle.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

impl<K: Key + Hash, S: Smr, V: Value> HashMap<K, S, V> {
    /// Creates a hash map with `buckets` buckets sharing the given domain.
    pub fn new(buckets: usize, smr: Arc<S>) -> Self {
        assert!(buckets > 0, "at least one bucket is required");
        let buckets = (0..buckets)
            .map(|_| HarrisList::new(smr.clone()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { buckets, smr }
    }

    /// Creates a hash map with a freshly created domain.
    pub fn with_config(buckets: usize, config: SmrConfig) -> Self {
        Self::new(buckets, S::new(config))
    }

    /// The shared reclamation domain.
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> HashMapHandle<S> {
        HashMapHandle {
            inner: HarrisListHandle {
                smr: self.smr.register(),
            },
        }
    }

    fn bucket(&self, key: &K) -> &HarrisList<K, S, V> {
        let mut hasher = FibHasher(0);
        key.hash(&mut hasher);
        // Lemire's widening-multiply range reduction: maps the hash onto
        // [0, buckets) from the high bits, avoiding the division a modulo
        // would cost per operation.
        let idx = ((u128::from(hasher.finish()) * self.buckets.len() as u128) >> 64) as usize;
        &self.buckets[idx]
    }

    /// Brand check — see [`HarrisList::check_guard`](crate::HarrisList).
    #[inline]
    fn check_guard<G: scot_smr::SmrGuard>(&self, g: &G) {
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Total number of live keys (testing/diagnostics; not atomic).
    pub fn len(&self, handle: &mut HashMapHandle<S>) -> usize {
        let mut g = handle.inner.smr.pin();
        self.check_guard(&g);
        let mut count = 0usize;
        for b in &self.buckets {
            b.walk(&mut g, |_, _| count += 1);
        }
        count
    }

    /// True if no live keys are present (testing/diagnostics; not atomic).
    pub fn is_empty(&self, handle: &mut HashMapHandle<S>) -> bool {
        self.len(handle) == 0
    }
}

/// Guard-scoped range scan over a [`HashMap`]: keys are hash-partitioned, so
/// the matching keys of `[lo, hi)` are scattered across every bucket.  The
/// scan therefore visits buckets one at a time, yielding each bucket's
/// matches in ascending order (buckets are sorted Harris lists) but buckets
/// themselves in array order — the overall sequence is **not** globally
/// sorted, which is the honest contract for an unordered container.
pub struct HashMapRange<'r, 'h, K: Key + Hash, S: Smr, V: Value = ()> {
    map: &'r HashMap<K, S, V>,
    guard: &'r mut <S::Handle as SmrHandle>::Guard<'h>,
    /// Index of the bucket currently being scanned.
    bucket: usize,
    state: ScanState<K, Node<K, V>>,
    /// Lower bound, re-applied at the start of every bucket.
    lo: K,
    hi: Option<K>,
}

impl<'r, 'h, K: Key + Hash, S: Smr, V: Value> RangeScan<K, V> for HashMapRange<'r, 'h, K, S, V> {
    fn next_entry(&mut self) -> Option<(K, &V)> {
        // Position first (bucket hopping re-borrows the guard per iteration),
        // then hand out the guard-scoped borrow once, outside the loop.
        let node = loop {
            let list = self.map.buckets.get(self.bucket)?;
            let node = crate::traverse::scan_next(
                &mut *self.guard,
                &mut self.state,
                self.hi.as_ref(),
                0,
                |g, bound| list.scan_seek(g, bound),
            );
            if node.is_null() {
                // Bucket exhausted (its sorted segment in [lo, hi) ended):
                // restart the window in the next bucket.
                self.bucket += 1;
                self.state = ScanState::Seek(SeekBound::Ge(self.lo));
                continue;
            }
            break node;
        };
        // SAFETY: `node` is protected by HP_CURR; the exclusive guard borrow
        // (held by `self`) keeps that slot published until the next advance.
        let node_ref = unsafe { node.deref_guarded(&*self.guard) };
        Some((node_ref.key, &node_ref.value))
    }
}

impl<K: Key + Hash, S: Smr, V: Value> ConcurrentMap<K, V> for HashMap<K, S, V> {
    type Handle = HashMapHandle<S>;
    type Guard<'h>
        = <S::Handle as SmrHandle>::Guard<'h>
    where
        Self: 'h;
    type Range<'r, 'h>
        = HashMapRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        HashMap::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        handle.inner.smr.pin()
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.check_guard(&*guard);
        scot_smr::SmrGuard::repin(guard);
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.bucket(key).get(guard, key)
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.bucket(&key).insert(guard, key, value)
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.bucket(key).remove(guard, key)
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.bucket(key).contains(guard, key)
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.check_guard(&*guard);
        HashMapRange {
            map: self,
            guard,
            bucket: 0,
            state: ScanState::Seek(SeekBound::Ge(lo)),
            lo,
            hi,
        }
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut g = handle.inner.smr.pin();
        self.check_guard(&g);
        let mut out = Vec::new();
        for b in &self.buckets {
            b.walk(&mut g, |k, v| out.push((*k, v.clone())));
        }
        out.sort_unstable_by_key(|entry| entry.0);
        out
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        // The buckets share one domain but count independently; the map's
        // numbers are the aggregate.
        self.buckets
            .iter()
            .map(ConcurrentMap::traversal_stats)
            .fold(TraversalSnapshot::default(), TraversalSnapshot::merged)
    }
}

#[cfg(test)]
mod tests {
    // `ConcurrentMap` is deliberately *not* imported here: the tests exercise
    // the set adapter, and having both traits in scope would make the
    // `insert`/`remove`/`contains` method calls ambiguous.
    use super::HashMap;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, Hp, Hyaline, Nbr, Smr, SmrConfig, SmrHandle, Vbr};
    use std::sync::Arc;

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    fn basic_semantics_under<S: Smr>() {
        let map: HashMap<u64, S> = HashMap::with_config(8, cfg());
        let mut h = map.handle();
        assert!(map.is_empty(&mut h));
        for i in 0..100u64 {
            assert!(map.insert(&mut h, i));
        }
        for i in 0..100u64 {
            assert!(!map.insert(&mut h, i), "duplicate insert of {i}");
            assert!(map.contains(&mut h, &i));
        }
        assert_eq!(map.len(&mut h), 100);
        for i in (0..100u64).step_by(3) {
            assert!(map.remove(&mut h, &i));
        }
        for i in 0..100u64 {
            assert_eq!(map.contains(&mut h, &i), i % 3 != 0);
        }
    }

    #[test]
    fn basic_semantics() {
        basic_semantics_under::<Hp>();
        basic_semantics_under::<Nbr>();
        basic_semantics_under::<Vbr>();
    }

    #[test]
    fn keys_distribute_over_buckets() {
        let map: HashMap<u64, Ebr> = HashMap::with_config(16, cfg());
        let mut h = map.handle();
        for i in 0..512u64 {
            map.insert(&mut h, i);
        }
        let nonempty = map
            .buckets
            .iter()
            .filter(|b| !b.collect_keys(&mut h.inner).is_empty())
            .count();
        assert!(
            nonempty >= 12,
            "expected the hash to spread keys over most buckets (got {nonempty}/16)"
        );
    }

    #[test]
    fn concurrent_stress_reclaims_everything() {
        let domain = Hyaline::new(cfg());
        let map: Arc<HashMap<u64, Hyaline>> = Arc::new(HashMap::new(32, domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = map.clone();
                s.spawn(move || {
                    let mut h = map.handle();
                    let mut x = t + 1;
                    for _ in 0..4000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 256;
                        if x % 2 == 0 {
                            map.insert(&mut h, key);
                        } else {
                            map.remove(&mut h, &key);
                        }
                    }
                    h.inner.smr.flush();
                });
            }
        });
        let mut h = map.handle();
        h.inner.smr.flush();
        drop(h);
        assert_eq!(domain.unreclaimed(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _: HashMap<u64, Hp> = HashMap::with_config(0, cfg());
    }
}
