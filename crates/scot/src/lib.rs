//! SCOT — Safe Concurrent Optimistic Traversals.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Fixing Non-blocking Data Structures for Better Compatibility with Memory
//! Reclamation Schemes"* (PPoPP '26): non-blocking search structures whose
//! **optimistic traversals** (walking through chains of logically deleted
//! nodes without unlinking them first) remain safe under robust reclamation
//! schemes — hazard pointers, hazard eras, interval-based reclamation and
//! Hyaline-1S — not only under epoch-based reclamation.
//!
//! The data structures provided are the ones the paper implements and
//! evaluates, plus the extensions its Table 1 describes:
//!
//! * [`HarrisList`] — Harris' lock-free ordered list with optimistic
//!   traversals, augmented with SCOT dangerous-zone validation (paper §3.2,
//!   Figure 5 right, including the recovery optimization of §3.2.1).
//! * [`HarrisMichaelList`] — Michael's variant that eagerly unlinks marked
//!   nodes; the baseline the paper compares against (compatible with every
//!   scheme out of the box, but more CAS traffic and restart-prone).
//! * [`NmTree`] — the Natarajan-Mittal external binary search tree with SCOT
//!   validation of the tagged-edge "dangerous zone" (paper §3.3).
//! * [`WfHarrisList`] — Harris' list with the paper's wait-free traversal
//!   extension (§3.4): a fast-path/slow-path search where updaters help
//!   stalled searchers through a per-thread announcement array.
//! * [`HashMap`] — a lock-free hash map realized, exactly as the paper notes,
//!   as an array of Harris lists (the hash-map row of Table 1).
//! * [`SkipList`] — a lock-free skip list whose every level is a Harris-style
//!   ordered list with per-level SCOT validation; traversal failures restart
//!   from the highest still-valid level rather than from the head (extension
//!   along the same axis as Table 1, exercising multi-level dangerous zones).
//!
//! All structures are **key-value maps**: every node carries a value `V` next
//! to its key, and the read path is *guard-scoped* — [`ConcurrentMap::get`]
//! returns `Option<&'g V>` whose lifetime is tied to the SMR guard, so the
//! borrow is kept alive by a hazard slot / era reservation, not by luck.
//! Membership-only use cases instantiate `V = ()` and go through the
//! [`ConcurrentSet`] adapter, which restores the paper's boolean set API and
//! is what the benchmark harness uses to reproduce the figures.
//!
//! All structures are parameterized by the reclamation scheme `S: Smr` from
//! the `scot-smr` crate and can therefore be instantiated with NR, EBR, HP,
//! HPopt, HE, IBR or Hyaline-1S without code changes — this is the crux of the
//! paper: fix the data structure once, keep every SMR scheme intact.

#![warn(missing_docs)]

pub mod harris_list;
pub mod hash_map;
pub mod hm_list;
pub mod nm_tree;
pub mod skip_list;
pub mod wait_free;

pub use harris_list::HarrisList;
pub use hash_map::HashMap;
pub use hm_list::HarrisMichaelList;
pub use nm_tree::NmTree;
pub use skip_list::SkipList;
pub use wait_free::WfHarrisList;

/// Marker bounds required of keys stored in the maps.
///
/// The paper's benchmark uses machine-word integer keys; requiring `Copy`
/// keeps nodes `Send` without reference-counting payloads and lets the
/// structures compare keys without holding borrows across unsafe dereferences.
pub trait Key: Copy + Ord + Send + Sync + 'static {}
impl<T: Copy + Ord + Send + Sync + 'static> Key for T {}

/// Marker bounds required of values stored in the maps.
///
/// Values are shared across threads by reference (a `get` on one thread may
/// borrow a value while another thread retires its node), hence `Send + Sync`;
/// `'static` is what lets the SMR schemes defer the destructor to an arbitrary
/// later reclamation point.  Unlike keys, values are **not** required to be
/// `Copy` or `Clone`: they are moved in on `insert` and only ever handed back
/// out as guard-scoped borrows (or by value from never-published nodes).
pub trait Value: Send + Sync + 'static {}
impl<T: Send + Sync + 'static> Value for T {}

/// The common key-value interface implemented by every structure in this
/// crate.  The benchmark harness, the integration tests and the examples are
/// all written against this trait (or its [`ConcurrentSet`] adapter) so each
/// experiment can sweep over (data structure × SMR scheme) combinations
/// exactly like the paper does.
///
/// # Guard-scoped reads
///
/// Operations run inside an explicit SMR critical section: callers obtain a
/// per-thread [`ConcurrentMap::Handle`] once, then [`ConcurrentMap::pin`] it
/// per operation (or per batch of operations) to get a
/// [`ConcurrentMap::Guard`].  [`ConcurrentMap::get`] and
/// [`ConcurrentMap::remove`] return `Option<&'g V>` — a borrow of the value
/// *inside the node*, with `'g` tied to the guard.  This is exactly where
/// reclamation compatibility bites: handing out `&V` from a lock-free
/// structure is a use-after-free unless the reclamation scheme provably keeps
/// the node alive while the borrow exists.  Here the type system enforces the
/// two lifetime halves of that argument:
///
/// * the borrow cannot outlive the guard (the `'g` lifetime), and
/// * while the borrow is alive, no other operation can run on the same guard
///   and recycle the hazard slot protecting the node (the `&'g mut` receiver).
///
/// One property the lifetimes cannot express is *which domain* a guard
/// publishes its protections into: two maps of the same scheme share one
/// guard type, so handing map B a guard pinned from map A's handle would
/// publish hazard slots where B's reclaimers never look.  Every operation
/// therefore brands its guard with one pointer compare
/// ([`scot_smr::SmrGuard::domain_addr`]) and panics on a foreign guard
/// instead of running unprotected.
///
/// Per scheme, the protection backing the borrow is: a published hazard
/// pointer (HP/HPopt), an era reservation (HE), the thread's `[lower, upper]`
/// interval (IBR), the entered slot list (Hyaline-1S), the announced epoch
/// (EBR), or triviality (NR never frees).
///
/// A value borrow cannot outlive its guard; this is enforced at compile time:
///
/// ```compile_fail
/// use scot::{ConcurrentMap, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let map: HarrisList<u64, Hp, String> = HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let _ = map.insert(&mut guard, 7, "seven".to_string());
/// let v: Option<&String> = map.get(&mut guard, &7);
/// drop(guard); // ERROR: `guard` is still borrowed by `v`
/// assert!(v.is_some());
/// ```
///
/// Nor can it outlive the handle the guard was pinned from:
///
/// ```compile_fail
/// use scot::{ConcurrentMap, HashMap};
/// use scot_smr::{Ibr, Smr, SmrConfig};
///
/// let map: HashMap<u64, Ibr, u64> = HashMap::with_config(16, SmrConfig::default());
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let _ = map.insert(&mut guard, 1, 100);
/// let v = map.get(&mut guard, &1);
/// drop(handle); // ERROR: `handle` is still borrowed by `guard` (and `v`)
/// assert!(v.is_some());
/// ```
pub trait ConcurrentMap<K: Key, V: Value>: Send + Sync + 'static {
    /// Per-thread handle (wraps the SMR thread registration).
    type Handle: Send;

    /// Guard marking a critical section, borrowed from a pinned handle.
    type Guard<'h>
    where
        Self: 'h;

    /// Registers the calling thread with the map's reclamation domain.
    fn handle(&self) -> Self::Handle;

    /// Enters a critical section on this thread's handle.  All operations
    /// take the returned guard; dropping it leaves the critical section.
    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h>;

    /// Looks up `key`, returning a borrow of its value that lives as long as
    /// the guard borrow — the value stays protected by the SMR scheme for
    /// exactly that long (see the trait-level discussion).
    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V>;

    /// Inserts `key → value`.  On conflict (the key is already present) the
    /// map is left unchanged and the rejected value is handed back to the
    /// caller as `Err(value)` — nothing is silently dropped.
    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V>;

    /// Removes `key`, returning a borrow of the evicted value.  The node has
    /// been retired to the reclamation scheme, but the scheme cannot free it
    /// while this guard protects it, so the borrow is sound for `'g` — the
    /// caller gets one last guard-scoped look at the value it deleted.
    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V>;

    /// Returns whether `key` is present.  Structures with a cheaper
    /// membership-only path (e.g. the wait-free list) override this.
    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.get(guard, key).is_some()
    }

    /// Collects every live entry into a `Vec<(K, V)>` sorted by key.
    ///
    /// Intended for testing and diagnostics only: the snapshot is not atomic
    /// and must not run concurrently with removals when a robust SMR scheme
    /// (HP/HE/IBR/Hyaline) is in use.  The test suites only call it after
    /// worker threads joined.
    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone;

    /// Number of traversal restarts observed so far (Table 2 of the paper).
    /// Structures that do not track restarts report 0.
    fn restart_count(&self) -> u64 {
        0
    }
}

/// The boolean membership interface of the paper's benchmark: a thin adapter
/// over [`ConcurrentMap`] with `V = ()`.
///
/// This trait has exactly one implementation — the blanket impl over every
/// `ConcurrentMap<K, ()>` — so "a set" and "a map storing `()`" are the same
/// object, and the paper's experiments (which only measure membership) run on
/// byte-identical node layouts to the original set-only code.
pub trait ConcurrentSet<K: Key>: Send + Sync + 'static {
    /// Per-thread handle (wraps the SMR thread registration).
    type Handle: Send;

    /// Registers the calling thread with the set's reclamation domain.
    fn handle(&self) -> Self::Handle;

    /// Inserts `key`; returns `false` if it was already present.
    fn insert(&self, handle: &mut Self::Handle, key: K) -> bool;

    /// Removes `key`; returns `false` if it was not present.
    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Returns whether `key` is present.
    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Collects the live keys in ascending order (testing/diagnostics only;
    /// same caveats as [`ConcurrentMap::collect`]).
    fn collect_keys(&self, handle: &mut Self::Handle) -> Vec<K>;

    /// Number of traversal restarts observed so far (Table 2 of the paper).
    /// Structures that do not track restarts report 0.
    fn restart_count(&self) -> u64 {
        0
    }
}

impl<K: Key, M: ConcurrentMap<K, ()>> ConcurrentSet<K> for M {
    type Handle = M::Handle;

    fn handle(&self) -> Self::Handle {
        ConcurrentMap::handle(self)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::insert(self, &mut guard, key, ()).is_ok()
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::remove(self, &mut guard, key).is_some()
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::contains(self, &mut guard, key)
    }

    fn collect_keys(&self, handle: &mut Self::Handle) -> Vec<K> {
        ConcurrentMap::collect(self, handle)
            .into_iter()
            .map(|(k, ())| k)
            .collect()
    }

    fn restart_count(&self) -> u64 {
        ConcurrentMap::restart_count(self)
    }
}

/// Statistics shared by the list/tree implementations: restart counting for
/// the paper's Table 2, plus §3.2.1 recovery events for the ablation bench.
#[derive(Default)]
pub(crate) struct Stats {
    restarts: core::sync::atomic::AtomicU64,
    recoveries: core::sync::atomic::AtomicU64,
}

impl Stats {
    #[inline]
    pub(crate) fn record_restart(&self) {
        self.restarts
            .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_recovery(&self) {
        self.recoveries
            .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(core::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn recoveries(&self) -> u64 {
        self.recoveries.load(core::sync::atomic::Ordering::Relaxed)
    }
}

/// Takes the payload back out of a node that was allocated through an SMR
/// guard but **never published** to the data structure, releasing the block's
/// raw memory without running the payload destructor.  This is what lets
/// `insert` hand the caller's value back on a late-detected conflict instead
/// of dropping it.
///
/// # Safety
/// `ptr` must come from `SmrGuard::alloc` on a live domain, no other thread
/// may ever have observed it, and the caller must not touch the block again.
pub(crate) unsafe fn take_unpublished<T>(ptr: scot_smr::Shared<T>) -> T {
    let raw = ptr.untagged().as_ptr();
    debug_assert!(!raw.is_null());
    let value = core::ptr::read(raw);
    let hdr = scot_smr::header_of(raw);
    let layout = (*hdr).vtable.layout;
    scot_smr::block::dealloc_raw(hdr, layout);
    value
}
