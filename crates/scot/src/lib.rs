//! SCOT — Safe Concurrent Optimistic Traversals.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Fixing Non-blocking Data Structures for Better Compatibility with Memory
//! Reclamation Schemes"* (PPoPP '26): non-blocking search structures whose
//! **optimistic traversals** (walking through chains of logically deleted
//! nodes without unlinking them first) remain safe under robust reclamation
//! schemes — hazard pointers, hazard eras, interval-based reclamation and
//! Hyaline-1S — not only under epoch-based reclamation.
//!
//! The data structures provided are the ones the paper implements and
//! evaluates, plus the extensions its Table 1 describes:
//!
//! * [`HarrisList`] — Harris' lock-free ordered list with optimistic
//!   traversals, augmented with SCOT dangerous-zone validation (paper §3.2,
//!   Figure 5 right, including the recovery optimization of §3.2.1).
//! * [`HarrisMichaelList`] — Michael's variant that eagerly unlinks marked
//!   nodes; the baseline the paper compares against (compatible with every
//!   scheme out of the box, but more CAS traffic and restart-prone).
//! * [`NmTree`] — the Natarajan-Mittal external binary search tree with SCOT
//!   validation of the tagged-edge "dangerous zone" (paper §3.3).
//! * [`WfHarrisList`] — Harris' list with the paper's wait-free traversal
//!   extension (§3.4): a fast-path/slow-path search where updaters help
//!   stalled searchers through a per-thread announcement array.
//! * [`HashMap`] — a lock-free hash map realized, exactly as the paper notes,
//!   as an array of Harris lists (the hash-map row of Table 1).
//!
//! All structures are parameterized by the reclamation scheme `S: Smr` from
//! the `scot-smr` crate and can therefore be instantiated with NR, EBR, HP,
//! HPopt, HE, IBR or Hyaline-1S without code changes — this is the crux of the
//! paper: fix the data structure once, keep every SMR scheme intact.

#![warn(missing_docs)]

pub mod harris_list;
pub mod hash_map;
pub mod hm_list;
pub mod nm_tree;
pub mod wait_free;

pub use harris_list::HarrisList;
pub use hash_map::HashMap;
pub use hm_list::HarrisMichaelList;
pub use nm_tree::NmTree;
pub use wait_free::WfHarrisList;

/// Marker bounds required of keys stored in the sets.
///
/// The paper's benchmark uses machine-word integer keys; requiring `Copy`
/// keeps nodes `Send` without reference-counting payloads and lets the
/// structures compare keys without holding borrows across unsafe dereferences.
pub trait Key: Copy + Ord + Send + Sync + 'static {}
impl<T: Copy + Ord + Send + Sync + 'static> Key for T {}

/// The common concurrent-set interface implemented by every structure in this
/// crate.  The benchmark harness, the integration tests and the examples are
/// all written against this trait so each experiment can sweep over
/// (data structure × SMR scheme) combinations exactly like the paper does.
pub trait ConcurrentSet<K: Key>: Send + Sync {
    /// Per-thread handle (wraps the SMR thread registration).
    type Handle: Send;

    /// Registers the calling thread with the set's reclamation domain.
    fn handle(&self) -> Self::Handle;

    /// Inserts `key`; returns `false` if it was already present.
    fn insert(&self, handle: &mut Self::Handle, key: K) -> bool;

    /// Removes `key`; returns `false` if it was not present.
    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Returns whether `key` is present.
    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Number of traversal restarts observed so far (Table 2 of the paper).
    /// Structures that do not track restarts report 0.
    fn restart_count(&self) -> u64 {
        0
    }
}

/// Statistics shared by the list/tree implementations: restart counting for
/// the paper's Table 2, plus §3.2.1 recovery events for the ablation bench.
#[derive(Default)]
pub(crate) struct Stats {
    restarts: core::sync::atomic::AtomicU64,
    recoveries: core::sync::atomic::AtomicU64,
}

impl Stats {
    #[inline]
    pub(crate) fn record_restart(&self) {
        self.restarts
            .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_recovery(&self) {
        self.recoveries
            .fetch_add(1, core::sync::atomic::Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(core::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn recoveries(&self) -> u64 {
        self.recoveries.load(core::sync::atomic::Ordering::Relaxed)
    }
}
