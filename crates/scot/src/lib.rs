//! SCOT — Safe Concurrent Optimistic Traversals.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Fixing Non-blocking Data Structures for Better Compatibility with Memory
//! Reclamation Schemes"* (PPoPP '26): non-blocking search structures whose
//! **optimistic traversals** (walking through chains of logically deleted
//! nodes without unlinking them first) remain safe under robust reclamation
//! schemes — hazard pointers, hazard eras, interval-based reclamation and
//! Hyaline-1S — not only under epoch-based reclamation.
//!
//! The data structures provided are the ones the paper implements and
//! evaluates, plus the extensions its Table 1 describes:
//!
//! * [`HarrisList`] — Harris' lock-free ordered list with optimistic
//!   traversals, augmented with SCOT dangerous-zone validation (paper §3.2,
//!   Figure 5 right, including the recovery optimization of §3.2.1).
//! * [`HarrisMichaelList`] — Michael's variant that eagerly unlinks marked
//!   nodes; the baseline the paper compares against (compatible with every
//!   scheme out of the box, but more CAS traffic and restart-prone).
//! * [`NmTree`] — the Natarajan-Mittal external binary search tree with SCOT
//!   validation of the tagged-edge "dangerous zone" (paper §3.3).
//! * [`WfHarrisList`] — Harris' list with the paper's wait-free traversal
//!   extension (§3.4): a fast-path/slow-path search where updaters help
//!   stalled searchers through a per-thread announcement array.
//! * [`HashMap`] — a lock-free hash map realized, exactly as the paper notes,
//!   as an array of Harris lists (the hash-map row of Table 1).
//! * [`SkipList`] — a lock-free skip list whose every level is a Harris-style
//!   ordered list with per-level SCOT validation; traversal failures restart
//!   from the highest still-valid level rather than from the head (extension
//!   along the same axis as Table 1, exercising multi-level dangerous zones).
//!
//! All structures are **key-value maps**: every node carries a value `V` next
//! to its key, and the read path is *guard-scoped* — [`ConcurrentMap::get`]
//! returns `Option<&'g V>` whose lifetime is tied to the SMR guard, so the
//! borrow is kept alive by a hazard slot / era reservation, not by luck.
//! Membership-only use cases instantiate `V = ()` and go through the
//! [`ConcurrentSet`] adapter, which restores the paper's boolean set API and
//! is what the benchmark harness uses to reproduce the figures.
//!
//! All structures are parameterized by the reclamation scheme `S: Smr` from
//! the `scot-smr` crate and can therefore be instantiated with NR, EBR, HP,
//! HPopt, HE, IBR or Hyaline-1S without code changes — this is the crux of the
//! paper: fix the data structure once, keep every SMR scheme intact.
//!
//! The protect → validate → recover loop itself is fixed **once for the whole
//! crate**: the [`traverse`] module holds the shared traversal cursor (and the
//! [`TraversalStats`] every structure reports through), the [`slots`] module
//! holds the one hazard-slot role table, and every Harris-style traversal in
//! the crate is a client of that cursor.  On top of it, every structure
//! supports **guard-scoped range scans** ([`ConcurrentMap::range`] /
//! [`ConcurrentMap::iter_from`]): lending cursors whose yielded value borrows
//! are protected exactly like [`ConcurrentMap::get`]'s.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod harris_list;
pub mod hash_map;
pub mod hm_list;
pub mod nm_tree;
pub mod skip_list;
pub mod slots;
pub mod traverse;
pub mod tuning;
pub mod wait_free;

pub use harris_list::HarrisList;
pub use hash_map::HashMap;
pub use hm_list::HarrisMichaelList;
pub use nm_tree::NmTree;
pub use skip_list::SkipList;
pub use traverse::{TraversalSnapshot, TraversalStats};
pub use wait_free::WfHarrisList;

/// Marker bounds required of keys stored in the maps.
///
/// The paper's benchmark uses machine-word integer keys; requiring `Copy`
/// keeps nodes `Send` without reference-counting payloads and lets the
/// structures compare keys without holding borrows across unsafe dereferences.
pub trait Key: Copy + Ord + Send + Sync + 'static {}
impl<T: Copy + Ord + Send + Sync + 'static> Key for T {}

/// Marker bounds required of values stored in the maps.
///
/// Values are shared across threads by reference (a `get` on one thread may
/// borrow a value while another thread retires its node), hence `Send + Sync`;
/// `'static` is what lets the SMR schemes defer the destructor to an arbitrary
/// later reclamation point.  Unlike keys, values are **not** required to be
/// `Copy` or `Clone`: they are moved in on `insert` and only ever handed back
/// out as guard-scoped borrows (or by value from never-published nodes).
pub trait Value: Send + Sync + 'static {}
impl<T: Send + Sync + 'static> Value for T {}

/// The common key-value interface implemented by every structure in this
/// crate.  The benchmark harness, the integration tests and the examples are
/// all written against this trait (or its [`ConcurrentSet`] adapter) so each
/// experiment can sweep over (data structure × SMR scheme) combinations
/// exactly like the paper does.
///
/// # Guard-scoped reads
///
/// Operations run inside an explicit SMR critical section: callers obtain a
/// per-thread [`ConcurrentMap::Handle`] once, then [`ConcurrentMap::pin`] it
/// per operation (or per batch of operations) to get a
/// [`ConcurrentMap::Guard`].  [`ConcurrentMap::get`] and
/// [`ConcurrentMap::remove`] return `Option<&'g V>` — a borrow of the value
/// *inside the node*, with `'g` tied to the guard.  This is exactly where
/// reclamation compatibility bites: handing out `&V` from a lock-free
/// structure is a use-after-free unless the reclamation scheme provably keeps
/// the node alive while the borrow exists.  Here the type system enforces the
/// two lifetime halves of that argument:
///
/// * the borrow cannot outlive the guard (the `'g` lifetime), and
/// * while the borrow is alive, no other operation can run on the same guard
///   and recycle the hazard slot protecting the node (the `&'g mut` receiver).
///
/// One property the lifetimes cannot express is *which domain* a guard
/// publishes its protections into: two maps of the same scheme share one
/// guard type, so handing map B a guard pinned from map A's handle would
/// publish hazard slots where B's reclaimers never look.  Every operation
/// therefore brands its guard with one pointer compare
/// ([`scot_smr::SmrGuard::domain_addr`]) and panics on a foreign guard
/// instead of running unprotected.
///
/// Per scheme, the protection backing the borrow is: a published hazard
/// pointer (HP/HPopt), an era reservation (HE), the thread's `[lower, upper]`
/// interval (IBR), the entered slot list (Hyaline-1S), the announced epoch
/// (EBR), or triviality (NR never frees).
///
/// A value borrow cannot outlive its guard; this is enforced at compile time:
///
/// ```compile_fail
/// use scot::{ConcurrentMap, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let map: HarrisList<u64, Hp, String> = HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let _ = map.insert(&mut guard, 7, "seven".to_string());
/// let v: Option<&String> = map.get(&mut guard, &7);
/// drop(guard); // ERROR: `guard` is still borrowed by `v`
/// assert!(v.is_some());
/// ```
///
/// Nor can it outlive the handle the guard was pinned from:
///
/// ```compile_fail
/// use scot::{ConcurrentMap, HashMap};
/// use scot_smr::{Ibr, Smr, SmrConfig};
///
/// let map: HashMap<u64, Ibr, u64> = HashMap::with_config(16, SmrConfig::default());
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let _ = map.insert(&mut guard, 1, 100);
/// let v = map.get(&mut guard, &1);
/// drop(handle); // ERROR: `handle` is still borrowed by `guard` (and `v`)
/// assert!(v.is_some());
/// ```
///
/// # Guard-scoped range scans
///
/// [`ConcurrentMap::range`] and [`ConcurrentMap::iter_from`] return a lending
/// cursor ([`RangeScan`]) whose entries borrow values under the same
/// protection contract as `get`: the item handed out by
/// [`RangeScan::next_entry`] stays protected until the *next* advance
/// (which recycles the hazard slot covering it), and the scan exclusively
/// borrows the guard, so no other operation can recycle its slots mid-scan.
/// Consequently a scan — and every borrow obtained from it — cannot outlive
/// the guard:
///
/// ```compile_fail
/// use scot::{ConcurrentMap, RangeScan, SkipList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let map: SkipList<u64, Hp, String> = SkipList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let _ = map.insert(&mut guard, 7, "seven".to_string());
/// let mut scan = map.range(&mut guard, 0..100);
/// let first = scan.next_entry();
/// drop(guard); // ERROR: `guard` is still borrowed by `scan` (and `first`)
/// assert!(first.is_some());
/// ```
///
/// Nor can one yielded borrow survive the next advance (the lending-iterator
/// contract that makes finite hazard slots suffice for unbounded scans):
///
/// ```compile_fail
/// use scot::{ConcurrentMap, RangeScan, HarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let map: HarrisList<u64, Hp, String> = HarrisList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&map);
/// let mut guard = map.pin(&mut handle);
/// let mut scan = map.iter_from(&mut guard, 0);
/// let first = scan.next_entry();
/// let second = scan.next_entry(); // ERROR: `scan` is still borrowed by `first`
/// assert_eq!(first, second);
/// ```
pub trait ConcurrentMap<K: Key, V: Value>: Send + Sync + 'static {
    /// Per-thread handle (wraps the SMR thread registration).
    type Handle: Send;

    /// Guard marking a critical section, borrowed from a pinned handle.
    type Guard<'h>
    where
        Self: 'h;

    /// Registers the calling thread with the map's reclamation domain.
    fn handle(&self) -> Self::Handle;

    /// Enters a critical section on this thread's handle.  All operations
    /// take the returned guard; dropping it leaves the critical section.
    #[must_use = "dropping the guard immediately leaves the critical section"]
    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h>;

    /// Refreshes the guard's critical section **in place**, between
    /// operations batched under one guard — the cheap equivalent of dropping
    /// the guard and pinning again (forwards to [`scot_smr::SmrGuard::repin`]).
    ///
    /// Holding one guard across a batch of operations amortizes the pin/unpin
    /// fences, but a guard held forever blocks reclamation under the
    /// epoch/era schemes; calling this at batch edges re-announces the
    /// current epoch so the domain can advance.  The `&mut` receiver ends all
    /// guard-scoped value borrows, exactly as re-pinning would.  For schemes
    /// without batch state (e.g. NR) this is a no-op.
    fn repin<'h>(&self, guard: &mut Self::Guard<'h>);

    /// Looks up `key`, returning a borrow of its value that lives as long as
    /// the guard borrow — the value stays protected by the SMR scheme for
    /// exactly that long (see the trait-level discussion).
    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V>;

    /// Inserts `key → value`.  On conflict (the key is already present) the
    /// map is left unchanged and the rejected value is handed back to the
    /// caller as `Err(value)` — nothing is silently dropped.
    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V>;

    /// Removes `key`, returning a borrow of the evicted value.  The node has
    /// been retired to the reclamation scheme, but the scheme cannot free it
    /// while this guard protects it, so the borrow is sound for `'g` — the
    /// caller gets one last guard-scoped look at the value it deleted.
    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V>;

    /// Returns whether `key` is present.  Structures with a cheaper
    /// membership-only path (e.g. the wait-free list) override this.
    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.get(guard, key).is_some()
    }

    /// The lending cursor returned by [`ConcurrentMap::range`] /
    /// [`ConcurrentMap::iter_from`]: it mutably borrows the guard for the
    /// whole scan (`'r`), which is what keeps the protection slots of the
    /// parked position from being recycled between advances.
    type Range<'r, 'h>: RangeScan<K, V>
    where
        Self: 'h,
        'h: 'r;

    /// Starts a guard-scoped scan of the keys in `[lo, hi)` (`hi = None`
    /// scans to the end).  This is the one required entry point;
    /// [`ConcurrentMap::range`] and [`ConcurrentMap::iter_from`] are
    /// sugar over it.
    ///
    /// Ordered structures (lists, skip list, tree) yield entries in strictly
    /// ascending key order; the hash map yields each bucket's matches in
    /// order but buckets themselves in hash order.  Scans are *not* atomic
    /// snapshots: a key continuously present for the whole scan is yielded
    /// exactly once, a key continuously absent is never yielded, and a key
    /// that churns concurrently may or may not appear — the usual contract of
    /// lock-free range scans.
    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r;

    /// Guard-scoped range scan over `bounds.start .. bounds.end`
    /// (half-open, like the standard library's range types).
    fn range<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        bounds: core::ops::Range<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.scan(guard, bounds.start, Some(bounds.end))
    }

    /// Guard-scoped scan of every key `>= lo`, to the end of the structure.
    fn iter_from<'r, 'h>(&'r self, guard: &'r mut Self::Guard<'h>, lo: K) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.scan(guard, lo, None)
    }

    /// Collects every live entry into a `Vec<(K, V)>` sorted by key.
    ///
    /// Intended for testing and diagnostics only: the snapshot is not atomic
    /// and must not run concurrently with removals when a robust SMR scheme
    /// (HP/HE/IBR/Hyaline) is in use.  The test suites only call it after
    /// worker threads joined.
    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone;

    /// Forces a reclamation pass on the handle's SMR state: drains what the
    /// scheme allows and adopts slots orphaned by dead threads.  The
    /// fault-injection harness drives domain drains through this after
    /// stalled, panicked, or dead workers.
    fn flush(&self, handle: &mut Self::Handle);

    /// Number of traversal restarts observed so far (Table 2 of the paper).
    fn restart_count(&self) -> u64 {
        self.traversal_stats().restarts
    }

    /// Traversal statistics: restarts, §3.2.1 recoveries and dangerous-zone
    /// entries, as recorded by the shared [`traverse`] cursor.
    fn traversal_stats(&self) -> TraversalSnapshot;
}

/// A guard-scoped range scan: a **lending** cursor over map entries.
///
/// Unlike `Iterator`, each yielded item borrows the cursor itself, so the
/// borrow must end before the next advance — that is what lets a finite set
/// of hazard slots protect an unbounded scan: only the parked position needs
/// protection, and advancing recycles it.  See the
/// [`ConcurrentMap`] trait docs for the compile-time guarantees.
pub trait RangeScan<K, V> {
    /// Advances to the next entry, returning the key and a borrow of the
    /// value that lives until the next call (or the end of the scan).
    /// Returns `None` once the upper bound or the end of the structure is
    /// reached; further calls keep returning `None`.
    fn next_entry(&mut self) -> Option<(K, &V)>;
}

/// The boolean membership interface of the paper's benchmark: a thin adapter
/// over [`ConcurrentMap`] with `V = ()`.
///
/// This trait has exactly one implementation — the blanket impl over every
/// `ConcurrentMap<K, ()>` — so "a set" and "a map storing `()`" are the same
/// object, and the paper's experiments (which only measure membership) run on
/// byte-identical node layouts to the original set-only code.
pub trait ConcurrentSet<K: Key>: Send + Sync + 'static {
    /// Per-thread handle (wraps the SMR thread registration).
    type Handle: Send;

    /// Registers the calling thread with the set's reclamation domain.
    fn handle(&self) -> Self::Handle;

    /// Inserts `key`; returns `false` if it was already present.
    fn insert(&self, handle: &mut Self::Handle, key: K) -> bool;

    /// Removes `key`; returns `false` if it was not present.
    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Returns whether `key` is present.
    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool;

    /// Collects the live keys in ascending order (testing/diagnostics only;
    /// same caveats as [`ConcurrentMap::collect`]).
    fn collect_keys(&self, handle: &mut Self::Handle) -> Vec<K>;

    /// Collects the keys in `[lo, hi)` via one guard-scoped range scan, in
    /// the structure's scan order (ascending for the ordered structures,
    /// per-bucket segments for the hash map).  Unlike
    /// [`ConcurrentSet::collect_keys`] this is safe to run concurrently with
    /// removals under every scheme — it is the membership view of
    /// [`ConcurrentMap::range`].
    fn collect_range(&self, handle: &mut Self::Handle, lo: K, hi: K) -> Vec<K>;

    /// Number of traversal restarts observed so far (Table 2 of the paper).
    fn restart_count(&self) -> u64 {
        self.traversal_stats().restarts
    }

    /// Traversal statistics (restarts / recoveries / zone entries), see
    /// [`ConcurrentMap::traversal_stats`].
    fn traversal_stats(&self) -> TraversalSnapshot;
}

impl<K: Key, M: ConcurrentMap<K, ()>> ConcurrentSet<K> for M {
    type Handle = M::Handle;

    fn handle(&self) -> Self::Handle {
        ConcurrentMap::handle(self)
    }

    fn insert(&self, handle: &mut Self::Handle, key: K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::insert(self, &mut guard, key, ()).is_ok()
    }

    fn remove(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::remove(self, &mut guard, key).is_some()
    }

    fn contains(&self, handle: &mut Self::Handle, key: &K) -> bool {
        let mut guard = self.pin(handle);
        ConcurrentMap::contains(self, &mut guard, key)
    }

    fn collect_keys(&self, handle: &mut Self::Handle) -> Vec<K> {
        ConcurrentMap::collect(self, handle)
            .into_iter()
            .map(|(k, ())| k)
            .collect()
    }

    fn collect_range(&self, handle: &mut Self::Handle, lo: K, hi: K) -> Vec<K> {
        let mut guard = self.pin(handle);
        let mut scan = self.scan(&mut guard, lo, Some(hi));
        let mut keys = Vec::new();
        while let Some((k, ())) = scan.next_entry() {
            keys.push(k);
        }
        keys
    }

    fn restart_count(&self) -> u64 {
        ConcurrentMap::restart_count(self)
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        ConcurrentMap::traversal_stats(self)
    }
}

/// Takes the payload back out of a node that was allocated through an SMR
/// guard but **never published** to the data structure, releasing the block's
/// raw memory without running the payload destructor.  This is what lets
/// `insert` hand the caller's value back on a late-detected conflict instead
/// of dropping it.
///
/// # Safety
/// `ptr` must come from `SmrGuard::alloc` on a live domain, no other thread
/// may ever have observed it, and the caller must not touch the block again.
pub(crate) unsafe fn take_unpublished<T>(ptr: scot_smr::Shared<T>) -> T {
    let raw = ptr.untagged().as_ptr();
    debug_assert!(!raw.is_null());
    // SAFETY: the caller guarantees the block was never published, so this
    // thread has exclusive access; the value is moved out exactly once and
    // the raw block (header + payload) is released without re-running the
    // payload destructor.
    unsafe {
        let value = core::ptr::read(raw);
        let hdr = scot_smr::header_of(raw);
        let layout = (*hdr).vtable.layout;
        scot_smr::block::dealloc_raw(hdr, layout);
        value
    }
}
