//! Vendored stub of `proptest` covering the subset this workspace uses:
//! the [`strategy::Strategy`] trait with `prop_map`, `any::<T>()`, integer
//! range strategies, `prop::collection::vec`, `prop_oneof!`, the `proptest!`
//! test macro and the `prop_assert*` macros.
//!
//! Semantics deliberately simplified relative to upstream: inputs are drawn
//! from a deterministic per-test PRNG (so CI runs are reproducible) and
//! failing cases are **not shrunk** — the assertion message reports the raw
//! failing input instead.  Swap this path dependency for the upstream crate
//! to regain shrinking and persistence.

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator driving input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A fixed-seed generator: every test run draws the same case sequence.
        pub fn deterministic() -> Self {
            Self(0x5c07_0123_4567_89ab)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform-enough value in `[0, bound)`; `bound` 0 is treated as 1.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Self(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: any value is in range.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for collection strategies (half-open, like upstream's
    /// conversion from `Range<usize>`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `prop` module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with possibly distinct types.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (no shrinking: equivalent to
/// `assert!` with the failing inputs visible in the panic location).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` for every generated input tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for _ in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_honour_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = prop::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in any::<u16>(), small in 0usize..4) {
            prop_assert!(small < 4);
            prop_assert_eq!(u32::from(x) & 0xFFFF, u32::from(x));
        }

        #[test]
        fn oneof_draws_every_arm(v in prop::collection::vec(
            prop_oneof![0u32..1, 10u32..11, 20u32..21], 64..65)) {
            prop_assert!(v.iter().all(|&x| x == 0 || x == 10 || x == 20));
        }
    }
}
