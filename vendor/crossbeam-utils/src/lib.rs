//! Vendored stub of `crossbeam-utils` providing only [`CachePadded`], the one
//! item this workspace uses.  The evaluation environment has no access to
//! crates.io; swap this path dependency for the upstream crate to get the
//! full library (the API of `CachePadded` here matches upstream).

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (128 bytes covers
/// the spatial-prefetcher pairing on modern x86-64 and the line size of
/// several AArch64 parts, matching upstream's choice for those targets).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of a cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
