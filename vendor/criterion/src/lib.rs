//! Vendored stub of `criterion` exposing the API surface this workspace's
//! benches use: `Criterion::benchmark_group`, group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`, `throughput`), `bench_function`,
//! `Bencher::iter`/`iter_custom`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark routine runs
//! `sample_size` samples of one iteration each and the median sample time is
//! reported (plus derived throughput when configured).  There is no
//! statistical analysis, plotting or result persistence — swap this path
//! dependency for the upstream crate for real Criterion runs.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifier of one benchmark within a group: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput configuration used to derive per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub always runs one iteration per
    /// sample, so the target measurement time is ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub performs no warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark routine and prints its median sample time.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 1,
            };
            routine(&mut bencher);
            samples.push(bencher.elapsed / bencher.iters.max(1) as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                "  ({:.0} elem/s)",
                n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
            ),
            Throughput::Bytes(n) => format!(
                "  ({:.0} B/s)",
                n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
            ),
        });
        println!(
            "  {}/{id}: median {median:?} over {} samples{}",
            self.name,
            samples.len(),
            rate.unwrap_or_default()
        );
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timing context handed to benchmark routines.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
        self.iters = 1;
    }

    /// Hands the iteration count to `routine`, which returns the total time
    /// spent on the measured section (Criterion's `iter_custom`).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let iters = 1;
        self.elapsed = routine(iters);
        self.iters = iters;
    }
}

/// Declares a function running each listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut calls = 0;
        group
            .sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("f", 1), |b| {
                b.iter_custom(|iters| {
                    calls += iters;
                    Duration::from_micros(5)
                })
            });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn bencher_iter_measures_once() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut ran = false;
        b.iter(|| ran = true);
        assert!(ran);
    }
}
