//! Vendored stub of `serde_json`: renders the vendored `serde::Value` tree as
//! JSON text.  Only the `to_string` / `to_string_pretty` entry points used by
//! this workspace are provided.

use serde::{Serialize, Value};

/// Serialization error (the stub serializer is infallible; the type exists so
/// call sites keep upstream serde_json's `Result` shape).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_sequence(out, items.len(), indent, depth, '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1)
            });
        }
        Value::Map(entries) => {
            write_sequence(out, entries.len(), indent, depth, '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_item(out, i);
    }
    newline_indent(out, indent, depth);
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "a\"b\\c\nd".to_string();
        assert_eq!(to_string(&s).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_render_finite_and_null() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
