//! Vendored stub of `parking_lot` exposing the `Mutex` API subset this
//! workspace uses (`new`, `lock`, `try_lock`), backed by `std::sync::Mutex`.
//! Like the real parking_lot, locks are not poisoned: a panic while holding
//! the lock leaves the data accessible to later lockers.

use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "lock is held");
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
