//! Vendored stub of `serde_derive`: a `#[derive(Serialize)]` implementation
//! for structs with named fields, written directly against `proc_macro`
//! (no `syn`/`quote`, which are unavailable offline).  It parses just enough
//! of the item to collect the struct name and field identifiers, then emits
//! an `impl serde::Serialize` building a `serde::Value::Map`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut fields_group = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                // Find the brace-delimited field list after the name.
                for t in &tokens[i + 2..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            fields_group = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => i += 1,
        }
    }

    let name = name.expect("#[derive(Serialize)] stub supports only structs");
    let fields = fields_group
        .map(parse_field_names)
        .expect("#[derive(Serialize)] stub supports only structs with named fields");

    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    let output = format!(
        "impl serde::Serialize for {name} {{\n\
         \x20   fn to_value(&self) -> serde::Value {{\n\
         \x20       serde::Value::Map(vec![{entries}])\n\
         \x20   }}\n\
         }}"
    );
    output.parse().expect("generated impl must parse")
}

/// Extracts field identifiers from the token stream inside the struct braces.
///
/// Grammar handled: `[#[attr]]* [pub [(..)]] name ':' type ','` repeated.
/// Commas inside angle brackets (e.g. `HashMap<K, V>`) are skipped by
/// tracking `<`/`>` depth; token groups are atomic so other nesting is free.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip outer attributes: `#` followed by a bracket group.
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility: `pub` optionally followed by `(...)`.
        if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        // Skip to the comma terminating this field (angle-depth aware).
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}
