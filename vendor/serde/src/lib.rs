//! Vendored stub of `serde` providing the `Serialize` subset this workspace
//! uses.  Instead of upstream's visitor-based `Serializer` architecture, this
//! stub serializes into an owned [`Value`] tree which `serde_json` (also
//! vendored) renders.  `#[derive(Serialize)]` is provided by the vendored
//! `serde_derive` proc-macro and generates `impl Serialize` blocks against
//! this trait.  Swap both path dependencies for the upstream crates to get
//! real serde; no workspace source changes are required.

// The derive macro emits paths rooted at `serde::`; this alias makes those
// paths resolve inside this crate's own tests as well.
extern crate self as serde;

pub use serde_derive::Serialize;

/// An owned, JSON-shaped value tree — the serialization target of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number (non-finite values render as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// A value that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for std::time::Duration {
    // Matches upstream serde's `{secs, nanos}` encoding of Duration.
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Some(1u8).to_value(), Value::U64(1));
        assert_eq!(
            vec!["a".to_string()].to_value(),
            Value::Seq(vec![Value::Str("a".into())])
        );
    }

    #[test]
    fn derive_generates_field_map() {
        #[derive(Serialize)]
        struct Point {
            x: u32,
            y: Option<f64>,
        }
        let v = Point { x: 1, y: None }.to_value();
        assert_eq!(
            v,
            Value::Map(vec![
                ("x".to_string(), Value::U64(1)),
                ("y".to_string(), Value::Null),
            ])
        );
    }
}
